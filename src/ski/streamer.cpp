#include "ski/streamer.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <utility>

#include "index/structural_index.h"
#include "intervals/cursor.h"
#include "json/text.h"
#include "path/filter.h"
#include "path/parser.h"
#include "ski/chunk_override.h"
#include "ski/sinks.h"
#include "util/error.h"

namespace jsonski::ski {
namespace {

using intervals::StreamCursor;
using path::PathQuery;
using path::PathStep;

/**
 * Container-depth bookkeeping for the linear driver: one unclosed
 * opener consumed per scope.  The skipper derives the structural-index
 * bitmap level from the bound counter, so the count must be exact at
 * every skipper call — RAII keeps it so across every return path.
 */
class DepthScope
{
  public:
    explicit DepthScope(int& depth) : depth_(depth) { ++depth_; }
    ~DepthScope() { --depth_; }
    DepthScope(const DepthScope&) = delete;
    DepthScope& operator=(const DepthScope&) = delete;

  private:
    int& depth_;
};

/** One streaming pass over a single record. */
class Driver
{
  public:
    Driver(const PathQuery& query, const StreamerOptions& options,
           std::string_view json, MatchSink* sink, StreamResult& result)
        : q_(query),
          options_(options),
          cur_(json, options.scalar_classifier),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result)
    {
        skip_.setBatchPrimitives(options.batch_primitives);
    }

    Driver(const PathQuery& query, const StreamerOptions& options,
           intervals::ChunkSource& source, size_t chunk_bytes,
           MatchSink* sink, StreamResult& result)
        : q_(query),
          options_(options),
          cur_(source, chunk_bytes, options.scalar_classifier),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result)
    {
        skip_.setBatchPrimitives(options.batch_primitives);
    }

    /** Record ingestion totals once the pass is over. */
    void
    finish()
    {
        result_.input_bytes = cur_.size();
        result_.ingest = cur_.ingestStats();
    }

    /**
     * Bind a structural semi-index (built from exactly this input) to
     * the pass's skipper.  Only the top-level driver is ever bound:
     * nested continuation drivers run over slices whose positions are
     * slice-relative, which the document-absolute index cannot serve.
     */
    void
    bindIndex(const index::StructuralIndex* idx)
    {
        skip_.bindIndex(idx, &depth_);
    }

    void
    run()
    {
        char c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::UnexpectedEnd, "empty input", 0);
        if (q_.empty()) {
            // `$` selects the whole record.
            emitValue();
            return;
        }
        if (q_[0].kind == PathStep::Kind::Descendant) {
            if (c == '{') {
                cur_.advance(1);
                runDescObject();
            } else if (c == '[') {
                cur_.advance(1);
                runDescArray();
            }
        } else if (q_[0].isArrayStep()) {
            if (c != '[')
                return; // root type mismatch: no match possible
            cur_.advance(1);
            runArray(0);
        } else {
            if (c != '{')
                return;
            cur_.advance(1);
            runObject(0);
        }
        flushDescendantMatches();
    }

  private:
    /** ACCEPT: fast-forward over the value and report it (G3). */
    void
    emitValue()
    {
        telemetry::PhaseScope phase(telemetry::Phase::Emit);
        size_t start = cur_.pos();
        // The whole value span must stay resident until it is handed
        // to the sink, however many chunk seams it crosses.
        size_t saved = cur_.hold();
        cur_.setHold(std::min(saved, start));
        skip_.overValue(Group::G3);
        size_t end = cur_.pos();
        // Trim trailing whitespace a primitive skip may have crossed.
        while (end > start && json::isWhitespace(cur_.at(end - 1)))
            --end;
        ++result_.matches;
        if (sink_)
            sink_->onMatch(cur_.slice(start, end));
        cur_.setHold(saved);
    }

    /**
     * Process an object whose attributes are matched against step
     * @p state.  Entry: position just past '{'.  Exit: position just
     * past the matching '}'.
     */
    void
    runObject(size_t state)
    {
        DepthScope depth(depth_);
        skip_.setTraceState(static_cast<uint16_t>(state));
        const PathStep& st = q_[state];
        bool accept_child = (state + 1 == q_.size());
        bool desc_child =
            !accept_child &&
            q_[state + 1].kind == PathStep::Kind::Descendant;
        Skipper::TypeFilter filter =
            accept_child || desc_child || !options_.type_filter
                ? Skipper::TypeFilter::Any
            : q_[state + 1].isArrayStep() ? Skipper::TypeFilter::Array
                                          : Skipper::TypeFilter::Object;
        for (;;) {
            Skipper::AttrResult attr = skip_.toAttr(filter, Group::G1);
            if (!attr.found)
                return; // object consumed; includes G4-less exhaustion
            if (cur_.slice(attr.key_begin, attr.key_end) != st.key) {
                // G2: unmatched attribute — skip its value wholesale.
                skip_.overValue(Group::G2);
                continue;
            }
            if (accept_child) {
                emitValue(); // G3
            } else if (desc_child) {
                char c = cur_.current();
                if (c == '{') {
                    cur_.advance(1);
                    runDescObject();
                } else if (c == '[') {
                    cur_.advance(1);
                    runDescArray();
                } else {
                    skip_.overValue(Group::G2); // primitives: no match
                }
            } else {
                char want = q_[state + 1].isArrayStep() ? '[' : '{';
                if (cur_.current() != want) {
                    // Type mismatch at runtime (only reachable with the
                    // G1 filter disabled): the subtree cannot match.
                    skip_.overValue(Group::G2);
                    skip_.toObjEnd(Group::G4);
                    return;
                }
                cur_.advance(1); // consume '{' or '['
                if (want == '{')
                    runObject(state + 1);
                else
                    runArray(state + 1);
                skip_.setTraceState(static_cast<uint16_t>(state));
            }
            // G4: attribute names are unique per object — nothing else
            // in this object can match; fast-forward past its '}'.
            skip_.toObjEnd(Group::G4);
            return;
        }
    }

    /**
     * Process an array whose elements are matched against step
     * @p state.  Entry: position just past '['.  Exit: just past ']'.
     */
    void
    runArray(size_t state)
    {
        if (q_[state].kind == PathStep::Kind::Filter) {
            runFilterArray(state);
            return;
        }
        DepthScope depth(depth_);
        skip_.setTraceState(static_cast<uint16_t>(state));
        const PathStep& st = q_[state];
        bool accept_child = (state + 1 == q_.size());
        size_t idx = 0;
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            return;
        }
        // G5: skip the prefix below the range start without matching.
        if (st.lo > 0 &&
            skip_.overElems(st.lo, idx, Group::G5) == Skipper::ElemStop::End)
            return;
        for (;;) {
            if (idx >= st.hi) {
                // G5: the range is exhausted; nothing further can match.
                skip_.toAryEnd(Group::G5);
                return;
            }
            c = cur_.skipWhitespace();
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            if (accept_child) {
                emitValue(); // G3: every in-range element is a match
            } else if (q_[state + 1].kind == PathStep::Kind::Descendant) {
                if (c == '{') {
                    cur_.advance(1);
                    runDescObject();
                } else if (c == '[') {
                    cur_.advance(1);
                    runDescArray();
                } else {
                    skip_.overValue(Group::G2);
                }
            } else {
                char want = q_[state + 1].isArrayStep() ? '[' : '{';
                if (options_.type_filter) {
                    // G1: only elements of the expected container type
                    // can extend the match.
                    Skipper::ElemStop stop =
                        skip_.toTypedElem(want, idx, st.hi, Group::G1);
                    if (stop == Skipper::ElemStop::End)
                        return;
                    if (idx >= st.hi)
                        continue; // budget reached; loop skips out
                } else if (cur_.current() != want) {
                    skip_.overValue(Group::G2);
                    c = cur_.skipWhitespace();
                    if (c == ',') {
                        cur_.advance(1);
                        ++idx;
                        continue;
                    }
                    if (c == ']') {
                        cur_.advance(1);
                        return;
                    }
                    throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
                }
                cur_.advance(1); // consume '{' or '['
                if (want == '{')
                    runObject(state + 1);
                else
                    runArray(state + 1);
                skip_.setTraceState(static_cast<uint16_t>(state));
            }
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                ++idx;
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
    }

    /**
     * Process an array whose elements are screened by filter step
     * @p state (DESIGN.md §13).  Only object elements can carry the
     * predicate field, so non-objects are G1 type-skips.  For each
     * candidate a probe scan locates the predicate field lazily; the
     * verdict then decides whether the rest of the candidate is kept
     * (G3: emitted, or replayed against the suffix query) or skipped
     * wholesale (G2) — the filter counterpart of the paper's
     * skip-what-cannot-match discipline.
     *
     * Entry: position just past '['.  Exit: just past ']'.
     */
    void
    runFilterArray(size_t state)
    {
        DepthScope depth(depth_);
        skip_.setTraceState(static_cast<uint16_t>(state));
        const PathStep& st = q_[state];
        bool accept_child = (state + 1 == q_.size());
        size_t idx = 0;
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            return;
        }
        for (;;) {
            // G1: only an object element can satisfy `@.field`.
            if (skip_.toTypedElem('{', idx,
                                  std::numeric_limits<size_t>::max(),
                                  Group::G1) == Skipper::ElemStop::End)
                return;
            size_t start = cur_.pos();
            // The candidate must stay resident through the verdict and
            // any suffix replay, whatever chunk seams it crosses.
            size_t saved = cur_.hold();
            cur_.setHold(std::min(saved, start));
            cur_.advance(1);
            if (filterVerdict(st)) {
                size_t end = cur_.pos();
                if (accept_child) {
                    telemetry::PhaseScope phase(telemetry::Phase::Emit);
                    ++result_.matches;
                    if (sink_)
                        sink_->onMatch(cur_.slice(start, end));
                } else {
                    runContinuation(state + 1, start, end);
                    skip_.setTraceState(static_cast<uint16_t>(state));
                }
            }
            cur_.setHold(saved);
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                ++idx;
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
    }

    /**
     * Probe one candidate object for @p st's predicate field and
     * decide the verdict.  The first member with the field's name wins
     * (duplicate-key contract); members before it are G2-skipped, the
     * field's own scalar lexeme is scan work (G1), and everything
     * after the verdict is fast-forwarded to the '}' in one go —
     * charged G3 when the candidate is kept, G2 when it is dropped.
     *
     * Entry: position just past '{'.  Exit: just past the '}'.
     */
    bool
    filterVerdict(const PathStep& st)
    {
        // The caller has consumed the candidate's '{'.
        DepthScope depth(depth_);
        for (;;) {
            Skipper::AttrResult attr =
                skip_.toAttr(Skipper::TypeFilter::Any, Group::G1);
            if (!attr.found)
                return path::evalPredicate(st, false, {});
            if (cur_.slice(attr.key_begin, attr.key_end) != st.key) {
                skip_.overValue(Group::G2);
                continue;
            }
            char c = cur_.current();
            size_t vs = cur_.pos();
            bool verdict;
            if (c == '{' || c == '[') {
                // Containers never satisfy a comparison; the operator
                // dispatch needs only the first byte.
                verdict =
                    path::evalPredicate(st, true, cur_.slice(vs, vs + 1));
                skip_.overValue(Group::G2);
            } else {
                skip_.overPrimitive(Group::G1);
                size_t ve = cur_.pos();
                while (ve > vs && json::isWhitespace(cur_.at(ve - 1)))
                    --ve;
                verdict =
                    path::evalPredicate(st, true, cur_.slice(vs, ve));
            }
            skip_.toObjEnd(verdict ? Group::G3 : Group::G2);
            return verdict;
        }
    }

    /**
     * A kept filter candidate with steps after it: replay the suffix
     * query over the (held, resident) candidate span with a nested
     * driver sharing this pass's result, so matches and stats
     * accumulate in document order.  Suffix queries are cached per
     * step; nesting is bounded by the query length because each
     * suffix is strictly shorter.
     */
    void
    runContinuation(size_t state, size_t start, size_t end)
    {
        if (cont_.empty())
            cont_.resize(q_.size());
        if (!cont_[state]) {
            auto sub = std::make_unique<PathQuery>();
            sub->steps.assign(q_.steps.begin() +
                                  static_cast<std::ptrdiff_t>(state),
                              q_.steps.end());
            cont_[state] = std::move(sub);
        }
        Driver sub(*cont_[state], options_, cur_.slice(start, end),
                   sink_, result_);
        try {
            sub.run();
        } catch (const ParseError& e) {
            // Translate slice-relative positions back to the record.
            throw ParseError(e.code(), "in filter candidate",
                             start + e.position());
        }
    }

    /**
     * Descendant traversal (terminal `..name` step, an extension over
     * the paper): every attribute at any depth whose name matches is
     * a result.  Matches may nest, so container spans are recorded as
     * placeholder slots (end = kInFlight) patched once their end is
     * known; slot order is document pre-order.  Completed slots are
     * flushed to the sink as soon as no earlier slot is still open
     * (maybeFlushDesc), so chunked-mode retention is bounded by the
     * deepest *nested-match* chain, not by the document.  Only
     * primitive runs can still be fast-forwarded — the type-inference
     * limitation the paper predicts for `..`.
     *
     * Entry: position just past '{'.  Exit: just past the '}'.
     */
    void
    runDescObject()
    {
        DepthScope depth(depth_);
        // Descendant traversal belongs to the terminal `..name` step.
        skip_.setTraceState(static_cast<uint16_t>(q_.size() - 1));
        if (++desc_depth_ > kMaxDescDepth)
            throw ParseError(ErrorCode::DepthExceeded,
                             "nesting too deep for descendant traversal",
                             cur_.pos());
        const std::string& k = q_.steps.back().key;
        for (;;) {
            Skipper::AttrResult attr =
                skip_.toAttr(Skipper::TypeFilter::Any, Group::G1);
            if (!attr.found) {
                --desc_depth_;
                return;
            }
            bool matched =
                cur_.slice(attr.key_begin, attr.key_end) == k;
            char c = cur_.current();
            if (c == '{' || c == '[') {
                size_t slot = SIZE_MAX;
                if (matched) {
                    slot = desc_pending_.size();
                    desc_pending_.emplace_back(cur_.pos(), kInFlight);
                    maybeFlushDesc(); // pins the span before any refill
                }
                cur_.advance(1);
                if (c == '{')
                    runDescObject();
                else
                    runDescArray();
                if (matched) {
                    desc_pending_[slot].second = cur_.pos();
                    maybeFlushDesc();
                }
            } else if (matched) {
                size_t start = cur_.pos();
                size_t saved = cur_.hold();
                cur_.setHold(std::min(saved, start));
                skip_.overPrimitive(Group::G3);
                size_t end = cur_.pos();
                while (end > start &&
                       json::isWhitespace(cur_.at(end - 1)))
                    --end;
                cur_.setHold(saved);
                desc_pending_.emplace_back(start, end);
                maybeFlushDesc();
            } else {
                skip_.overPrimitive(Group::G2);
            }
        }
    }

    /** Entry: position just past '['.  Exit: just past the ']'. */
    void
    runDescArray()
    {
        DepthScope depth(depth_);
        if (++desc_depth_ > kMaxDescDepth)
            throw ParseError(ErrorCode::DepthExceeded,
                             "nesting too deep for descendant traversal",
                             cur_.pos());
        for (;;) {
            // Primitive elements cannot match a name: batch-skip them.
            if (skip_.toContainerElem(Group::G1) ==
                Skipper::ElemStop::End) {
                --desc_depth_;
                return;
            }
            char c = cur_.current();
            cur_.advance(1);
            if (c == '{')
                runDescObject();
            else
                runDescArray();
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                --desc_depth_;
                return;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
    }

    /**
     * Deliver every completed slot not blocked by an earlier in-flight
     * one (pre-order is preserved because slots are recorded in
     * pre-order), then retarget the consumer hold at the earliest slot
     * still unflushed — or drop it when none remain.
     */
    void
    maybeFlushDesc()
    {
        while (desc_flushed_ < desc_pending_.size() &&
               desc_pending_[desc_flushed_].second != kInFlight) {
            auto [start, end] = desc_pending_[desc_flushed_];
            ++result_.matches;
            if (sink_)
                sink_->onMatch(cur_.slice(start, end));
            ++desc_flushed_;
        }
        if (desc_flushed_ == desc_pending_.size()) {
            // Fully drained: indices held on the stack are only live
            // while their slot is in-flight, so resetting is safe.
            desc_pending_.clear();
            desc_flushed_ = 0;
            cur_.setHold(StreamCursor::kNoHold);
        } else {
            cur_.setHold(desc_pending_[desc_flushed_].first);
        }
    }

    /** End-of-pass safety net; incremental flushing empties the list. */
    void
    flushDescendantMatches()
    {
        maybeFlushDesc();
        assert(desc_pending_.empty() && "descendant slot left in flight");
    }

    static constexpr int kMaxDescDepth = 20000;
    static constexpr size_t kInFlight = SIZE_MAX;

    const PathQuery& q_;
    const StreamerOptions& options_;
    StreamCursor cur_;
    Skipper skip_;
    MatchSink* sink_;
    StreamResult& result_;
    std::vector<std::pair<size_t, size_t>> desc_pending_;
    size_t desc_flushed_ = 0; ///< slots already delivered to the sink
    int desc_depth_ = 0;
    /** Containers entered and not yet closed (index level source). */
    int depth_ = 0;
    /** Cached suffix queries for filter continuations, by start step. */
    std::vector<std::unique_ptr<PathQuery>> cont_;
};

/**
 * Sink that turns a nested driver's slice-relative matches back into
 * absolute pending slots of the enclosing NfaDriver.  The slots are
 * already complete (both ends known), so appending preserves the
 * outer pre-order.
 */
class TranslatingSink : public MatchSink
{
  public:
    TranslatingSink(std::vector<std::pair<size_t, size_t>>& pending,
                    const char* base, size_t offset)
        : pending_(pending), base_(base), offset_(offset)
    {}

    void
    onMatch(std::string_view value) override
    {
        size_t start =
            offset_ + static_cast<size_t>(value.data() - base_);
        pending_.emplace_back(start, start + value.size());
    }

  private:
    std::vector<std::pair<size_t, size_t>>& pending_;
    const char* base_;
    size_t offset_;
};

/**
 * Streaming pass for the nondeterministic query surface — interior
 * descendant steps, alone or combined with filters (DESIGN.md §13).
 * Carries a multiset of NFA states (path::NfaSet) down the recursion
 * instead of the linear driver's single step index: a descendant step
 * keeps its search state co-resident with every continuation it
 * spawns, so `$..a[2].b` and `$..a[?(@.b)]..c` traverse the document
 * once.  Values are emitted once per accepting path, pre-order, via
 * the same pending-slot protocol the linear driver uses for terminal
 * descendants.  Fast-forwarding degrades gracefully: G4/G5 apply only
 * when no descendant state is live at the container, G1/G2 still
 * apply everywhere, and filter candidates keep the G3-or-G2 verdict
 * protocol of the linear driver.
 */
class NfaDriver
{
  public:
    NfaDriver(const PathQuery& query, const StreamerOptions& options,
              std::string_view json, MatchSink* sink,
              StreamResult& result)
        : q_(query),
          options_(options),
          cur_(json, options.scalar_classifier),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result)
    {
        skip_.setBatchPrimitives(options.batch_primitives);
    }

    NfaDriver(const PathQuery& query, const StreamerOptions& options,
              intervals::ChunkSource& source, size_t chunk_bytes,
              MatchSink* sink, StreamResult& result)
        : q_(query),
          options_(options),
          cur_(source, chunk_bytes, options.scalar_classifier),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result)
    {
        skip_.setBatchPrimitives(options.batch_primitives);
    }

    /** Record ingestion totals once the pass is over. */
    void
    finish()
    {
        result_.input_bytes = cur_.size();
        result_.ingest = cur_.ingestStats();
    }

    /**
     * Bind a structural semi-index built from exactly this input.
     * Top-level drivers only — interior replays (runInterior) run over
     * slices with slice-relative positions the index cannot serve.
     */
    void
    bindIndex(const index::StructuralIndex* idx)
    {
        skip_.bindIndex(idx, &depth_);
    }

    void
    run()
    {
        char c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::UnexpectedEnd, "empty input", 0);
        path::NfaSet start;
        start.add(0, 1);
        value(start);
        maybeFlush();
        assert(pending_.empty() && "nfa slot left in flight");
    }

  private:
    /**
     * Nested entry point for filter-candidate interiors: evaluate the
     * candidate (this driver's whole input) against state set
     * @p initial.  Counting is left to the enclosing driver — the
     * nested pass only forwards spans through its TranslatingSink.
     */
    void
    runFrom(const path::NfaSet& initial, int depth_base)
    {
        depth_ = depth_base;
        count_matches_ = false;
        value(initial);
        maybeFlush();
    }

    /**
     * Process one value against state set @p a.  Entry: position at
     * the value's first byte (whitespace allowed before it).  Exit:
     * position just past the value.
     */
    void
    value(const path::NfaSet& a)
    {
        char c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::UnexpectedEnd,
                             "unexpected end of input", cur_.pos());
        uint64_t acc = a.acceptCount(q_);
        size_t start = cur_.pos();
        size_t slot_base = pending_.size();
        if (acc > 0) {
            for (uint64_t i = 0; i < acc; ++i)
                pending_.emplace_back(start, kInFlight);
            maybeFlush(); // pins the span before any refill
        }
        if (c == '{' && path::nfaWantsObject(q_, a)) {
            cur_.advance(1);
            object(a);
        } else if (c == '[' && path::nfaWantsArray(q_, a)) {
            cur_.advance(1);
            array(a);
        } else {
            // No state can advance into this value: G3 when it is
            // itself accepted, G2 otherwise.
            skip_.overValue(acc > 0 ? Group::G3 : Group::G2);
        }
        if (acc > 0) {
            size_t end = cur_.pos();
            while (end > start && json::isWhitespace(cur_.at(end - 1)))
                --end;
            for (uint64_t i = 0; i < acc; ++i)
                pending_[slot_base + i].second = end;
            maybeFlush();
        }
    }

    /** Entry: position just past '{'.  Exit: just past the '}'. */
    void
    object(const path::NfaSet& a)
    {
        if (++depth_ > kMaxDepth)
            throw ParseError(ErrorCode::DepthExceeded,
                             "nesting too deep for descendant traversal",
                             cur_.pos());
        bool has_desc = path::nfaHasDescendant(q_, a);
        // Key states bind to the first member with their name only
        // (duplicate-key contract, mirrors the linear driver's G4).
        std::vector<char> consumed(a.states.size(), 0);
        for (;;) {
            Skipper::AttrResult attr =
                skip_.toAttr(Skipper::TypeFilter::Any, Group::G1);
            if (!attr.found) {
                --depth_;
                return;
            }
            path::NfaSet b = path::nfaOnKey(
                q_, a, cur_.slice(attr.key_begin, attr.key_end),
                &consumed);
            if (b.empty())
                skip_.overValue(Group::G2);
            else
                value(b);
            if (!has_desc) {
                // G4: once every Key state has bound, nothing else in
                // this object can match.
                bool live = false;
                for (size_t i = 0; i < a.states.size(); ++i) {
                    auto [s, c] = a.states[i];
                    (void)c;
                    if (s < q_.size() &&
                        q_[s].kind == PathStep::Kind::Key &&
                        !consumed[i]) {
                        live = true;
                        break;
                    }
                }
                if (!live) {
                    skip_.toObjEnd(Group::G4);
                    --depth_;
                    return;
                }
            }
        }
    }

    /** Entry: position just past '['.  Exit: just past the ']'. */
    void
    array(const path::NfaSet& a)
    {
        if (++depth_ > kMaxDepth)
            throw ParseError(ErrorCode::DepthExceeded,
                             "nesting too deep for descendant traversal",
                             cur_.pos());
        bool has_desc = path::nfaHasDescendant(q_, a);
        bool has_filter = false;
        size_t lo_min = std::numeric_limits<size_t>::max();
        size_t hi_max = 0;
        for (const auto& [s, c] : a.states) {
            (void)c;
            if (s >= q_.size())
                continue;
            const PathStep& st = q_[s];
            if (st.kind == PathStep::Kind::Filter)
                has_filter = true;
            else if (st.isArrayStep()) {
                lo_min = std::min(lo_min, st.lo);
                hi_max = std::max(hi_max, st.hi);
            }
        }
        // G5 range skipping is sound only when every live state is a
        // plain index/slice step.
        bool bounded = !has_desc && !has_filter &&
                       lo_min != std::numeric_limits<size_t>::max();
        size_t idx = 0;
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            --depth_;
            return;
        }
        if (bounded && lo_min > 0 &&
            skip_.overElems(lo_min, idx, Group::G5) ==
                Skipper::ElemStop::End) {
            --depth_;
            return;
        }
        std::vector<std::pair<size_t, uint64_t>> fs;
        for (;;) {
            if (bounded && idx >= hi_max) {
                skip_.toAryEnd(Group::G5);
                --depth_;
                return;
            }
            c = cur_.skipWhitespace();
            if (c == ']') {
                cur_.advance(1);
                --depth_;
                return;
            }
            fs.clear();
            path::NfaSet b = path::nfaOnElement(q_, a, idx, &fs);
            if (!fs.empty() && c == '{') {
                elementWithFilters(b, fs);
            } else if (b.empty()) {
                // Gap element: outside every index range (G5), or
                // wanted only by filters and not an object (G1).
                skip_.overValue(fs.empty() ? Group::G5 : Group::G1);
            } else {
                value(b);
            }
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                ++idx;
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                --depth_;
                return;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
    }

    /**
     * An object element wanted by at least one filter state: probe for
     * every distinct predicate field in a single scan, resolve the
     * verdicts, then fast-forward the remainder — G3 when any state
     * survives into the candidate, G2 when none does.  Survivor states
     * (filter advances merged into @p b) replay the held candidate
     * span through a nested NfaDriver whose matches are translated
     * back into this driver's pending queue.
     *
     * Entry: position at the element's '{'.  Exit: just past its '}'.
     */
    void
    elementWithFilters(path::NfaSet b,
                       std::vector<std::pair<size_t, uint64_t>>& fs)
    {
        size_t start = cur_.pos();
        size_t saved_pin = pin_;
        pin_ = std::min(pin_, start);
        maybeFlush(); // re-anchor the hold at the candidate
        cur_.advance(1);
        // The probe scan runs inside the candidate object; the depth
        // counter must say so for the skipper's index level to match.
        ++depth_;

        struct Probe
        {
            const std::string* field;
            bool present = false;
            size_t vs = 0, ve = 0;
        };
        std::vector<Probe> probes;
        for (const auto& [s, c] : fs) {
            (void)c;
            const std::string& f = q_[s].key;
            bool dup = false;
            for (const auto& p : probes) {
                if (*p.field == f) {
                    dup = true;
                    break;
                }
            }
            if (!dup)
                probes.push_back({&f, false, 0, 0});
        }
        size_t remaining = probes.size();
        bool consumed_whole = false;
        for (;;) {
            Skipper::AttrResult attr =
                skip_.toAttr(Skipper::TypeFilter::Any, Group::G1);
            if (!attr.found) {
                consumed_whole = true;
                break;
            }
            std::string_view key =
                cur_.slice(attr.key_begin, attr.key_end);
            Probe* hit = nullptr;
            for (auto& p : probes) {
                if (!p.present && *p.field == key) {
                    hit = &p;
                    break;
                }
            }
            if (hit == nullptr) {
                skip_.overValue(Group::G2);
                continue;
            }
            hit->present = true;
            hit->vs = cur_.pos();
            char vc = cur_.current();
            if (vc == '{' || vc == '[') {
                hit->ve = hit->vs + 1; // operator dispatch needs 1 byte
                skip_.overValue(Group::G2);
            } else {
                skip_.overPrimitive(Group::G1);
                size_t ve = cur_.pos();
                while (ve > hit->vs &&
                       json::isWhitespace(cur_.at(ve - 1)))
                    --ve;
                hit->ve = ve;
            }
            if (--remaining == 0)
                break;
        }
        for (const auto& [s, c] : fs) {
            const PathStep& st = q_[s];
            const Probe* p = nullptr;
            for (const auto& pr : probes) {
                if (*pr.field == st.key) {
                    p = &pr;
                    break;
                }
            }
            bool verdict =
                p->present
                    ? path::evalPredicate(st, true,
                                          cur_.slice(p->vs, p->ve))
                    : path::evalPredicate(st, false, {});
            if (verdict)
                b.add(s + 1, c);
        }
        if (!consumed_whole)
            skip_.toObjEnd(b.empty() ? Group::G2 : Group::G3);
        --depth_;
        size_t end = cur_.pos();
        uint64_t acc = b.acceptCount(q_);
        for (uint64_t i = 0; i < acc; ++i)
            pending_.emplace_back(start, end); // pre-order: value first
        if (acc > 0)
            maybeFlush();
        path::NfaSet rest = b.withoutAccept(q_);
        if (!rest.empty())
            runInterior(rest, start, end);
        pin_ = saved_pin;
        maybeFlush();
    }

    /**
     * Replay a kept candidate's interior against surviving state set
     * @p set with a nested NfaDriver over the resident span.  Stats
     * accumulate into the shared FastForwardStats (the candidate's
     * bytes are charged once by the probe scan and again by the
     * replay — deterministic, and an honest account of the extra
     * pass); matches flow through the TranslatingSink so only this
     * driver counts and delivers them.
     */
    void
    runInterior(const path::NfaSet& set, size_t start, size_t end)
    {
        std::string_view span = cur_.slice(start, end);
        TranslatingSink tsink(pending_, span.data(), start);
        NfaDriver sub(q_, options_, span, &tsink, result_);
        try {
            sub.runFrom(set, depth_);
        } catch (const ParseError& e) {
            throw ParseError(e.code(), "in filter candidate",
                             start + e.position());
        }
    }

    /**
     * Deliver every completed slot not blocked by an earlier in-flight
     * one, then retarget the consumer hold at the earliest unflushed
     * slot or the active candidate pin, whichever is lower.
     */
    void
    maybeFlush()
    {
        while (flushed_ < pending_.size() &&
               pending_[flushed_].second != kInFlight) {
            auto [start, end] = pending_[flushed_];
            if (count_matches_)
                ++result_.matches;
            if (sink_)
                sink_->onMatch(cur_.slice(start, end));
            ++flushed_;
        }
        size_t hold = pin_;
        if (flushed_ == pending_.size()) {
            pending_.clear();
            flushed_ = 0;
        } else {
            hold = std::min(hold, pending_[flushed_].first);
        }
        cur_.setHold(hold);
    }

    static constexpr int kMaxDepth = 20000;
    static constexpr size_t kInFlight = SIZE_MAX;

    const PathQuery& q_;
    const StreamerOptions& options_;
    StreamCursor cur_;
    Skipper skip_;
    MatchSink* sink_;
    StreamResult& result_;
    std::vector<std::pair<size_t, size_t>> pending_;
    size_t flushed_ = 0;   ///< slots already delivered to the sink
    size_t pin_ = StreamCursor::kNoHold; ///< active candidate hold
    bool count_matches_ = true; ///< false in nested candidate replays
    int depth_ = 0;
};

} // namespace

StreamResult
Streamer::run(std::string_view json, MatchSink* sink) const
{
    if (size_t chunk = testChunkBytesOverride()) {
        intervals::ViewSource source(json);
        return run(source, sink, chunk);
    }
    return runResident(json, sink);
}

StreamResult
Streamer::runResident(std::string_view json, MatchSink* sink) const
{
    StreamResult result;
    if (query_.hasInteriorDescendant()) {
        // Nondeterministic surface: the multiset driver (DESIGN.md
        // §13).  Everything else keeps the linear driver's exact
        // traversal, byte charges, and emissions.
        NfaDriver driver(query_, options_, json, sink, result);
        try {
            driver.run();
        } catch (const StopStreaming&) {
        }
        driver.finish();
        return result;
    }
    Driver driver(query_, options_, json, sink, result);
    try {
        driver.run();
    } catch (const StopStreaming&) {
        // A sink requested early termination; the partial result
        // (matches delivered so far) is valid.
    }
    driver.finish();
    return result;
}

StreamResult
Streamer::run(intervals::ChunkSource& source, MatchSink* sink,
              size_t chunk_bytes) const
{
    StreamResult result;
    if (query_.hasInteriorDescendant()) {
        NfaDriver driver(query_, options_, source, chunk_bytes, sink,
                         result);
        try {
            driver.run();
        } catch (const StopStreaming&) {
        }
        driver.finish();
        return result;
    }
    Driver driver(query_, options_, source, chunk_bytes, sink, result);
    try {
        driver.run();
    } catch (const StopStreaming&) {
    }
    driver.finish();
    return result;
}

namespace {

/**
 * Forwards matches to the caller's sink while counting what got
 * through, so the indexed run can tell whether a defensive
 * IndexMismatch arrived before anything reached the caller — replaying
 * from scratch is only sound when nothing did.
 */
class ForwardingCountSink : public MatchSink
{
  public:
    explicit ForwardingCountSink(MatchSink* inner) : inner_(inner) {}

    void
    onMatch(std::string_view value) override
    {
        ++forwarded_;
        inner_->onMatch(value);
    }

    size_t forwarded() const { return forwarded_; }

  private:
    MatchSink* inner_;
    size_t forwarded_ = 0;
};

} // namespace

StreamResult
Streamer::runIndexed(std::string_view json,
                     const index::StructuralIndex& idx,
                     MatchSink* sink) const
{
    if (size_t chunk = testChunkBytesOverride()) {
        intervals::ViewSource source(json);
        return runIndexed(source, idx, sink, chunk);
    }
    if (!idx.usable() || idx.levels() == 0)
        return runResident(json, sink); // unclean document: stream
    ForwardingCountSink counted(sink);
    MatchSink* inner = sink ? static_cast<MatchSink*>(&counted) : nullptr;
    try {
        StreamResult result;
        if (query_.hasInteriorDescendant()) {
            NfaDriver driver(query_, options_, json, inner, result);
            driver.bindIndex(&idx);
            try {
                driver.run();
            } catch (const StopStreaming&) {
            }
            driver.finish();
            return result;
        }
        Driver driver(query_, options_, json, inner, result);
        driver.bindIndex(&idx);
        try {
            driver.run();
        } catch (const StopStreaming&) {
        }
        driver.finish();
        return result;
    } catch (const ParseError& e) {
        // A self-built index only contradicts the driver on
        // grammatically invalid (though structurally clean) documents,
        // where the driver's lenient skip rules desynchronize its
        // depth from the classifier's — e.g. a backslash spliced in
        // front of a string's closing quote.  The bytes are resident
        // and nothing reached the sink yet, so replay plain: warm
        // output stays identical to streaming even on junk.  After an
        // emission the replay would duplicate matches, so the typed
        // mismatch propagates (fail closed, never wrong output).
        if (e.code() != ErrorCode::IndexMismatch ||
            counted.forwarded() != 0)
            throw;
        return runResident(json, sink);
    }
}

StreamResult
Streamer::runIndexed(intervals::ChunkSource& source,
                     const index::StructuralIndex& idx, MatchSink* sink,
                     size_t chunk_bytes) const
{
    // Unlike the resident overload, a defensive IndexMismatch cannot
    // fall back to a plain replay here: the source is forward-only and
    // the warm skips have already consumed it.  It propagates typed
    // (fail closed) — reachable only for grammatically invalid
    // documents or a caller-contract-violating foreign index.
    if (!idx.usable() || idx.levels() == 0)
        return run(source, sink, chunk_bytes);
    StreamResult result;
    if (query_.hasInteriorDescendant()) {
        NfaDriver driver(query_, options_, source, chunk_bytes, sink,
                         result);
        driver.bindIndex(&idx);
        try {
            driver.run();
        } catch (const StopStreaming&) {
        }
        driver.finish();
        return result;
    }
    Driver driver(query_, options_, source, chunk_bytes, sink, result);
    driver.bindIndex(&idx);
    try {
        driver.run();
    } catch (const StopStreaming&) {
    }
    driver.finish();
    return result;
}

QueryResult
query(std::string_view json, std::string_view path_text, bool collect)
{
    Streamer streamer(path::parse(path_text));
    QueryResult out;
    if (collect) {
        CollectSink sink;
        StreamResult r = streamer.run(json, &sink);
        out.count = r.matches;
        out.stats = r.stats;
        out.values = std::move(sink.values);
    } else {
        StreamResult r = streamer.run(json);
        out.count = r.matches;
        out.stats = r.stats;
    }
    return out;
}

} // namespace jsonski::ski
