#include "ski/streamer.h"

#include <algorithm>
#include <cassert>

#include "intervals/cursor.h"
#include "json/text.h"
#include "path/parser.h"
#include "ski/chunk_override.h"
#include "ski/sinks.h"
#include "util/error.h"

namespace jsonski::ski {
namespace {

using intervals::StreamCursor;
using path::PathQuery;
using path::PathStep;

/** One streaming pass over a single record. */
class Driver
{
  public:
    Driver(const PathQuery& query, const StreamerOptions& options,
           std::string_view json, MatchSink* sink, StreamResult& result)
        : q_(query),
          options_(options),
          cur_(json, options.scalar_classifier),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result)
    {
        skip_.setBatchPrimitives(options.batch_primitives);
    }

    Driver(const PathQuery& query, const StreamerOptions& options,
           intervals::ChunkSource& source, size_t chunk_bytes,
           MatchSink* sink, StreamResult& result)
        : q_(query),
          options_(options),
          cur_(source, chunk_bytes, options.scalar_classifier),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result)
    {
        skip_.setBatchPrimitives(options.batch_primitives);
    }

    /** Record ingestion totals once the pass is over. */
    void
    finish()
    {
        result_.input_bytes = cur_.size();
        result_.ingest = cur_.ingestStats();
    }

    void
    run()
    {
        char c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::UnexpectedEnd, "empty input", 0);
        if (q_.empty()) {
            // `$` selects the whole record.
            emitValue();
            return;
        }
        if (q_[0].kind == PathStep::Kind::Descendant) {
            if (c == '{') {
                cur_.advance(1);
                runDescObject();
            } else if (c == '[') {
                cur_.advance(1);
                runDescArray();
            }
        } else if (q_[0].isArrayStep()) {
            if (c != '[')
                return; // root type mismatch: no match possible
            cur_.advance(1);
            runArray(0);
        } else {
            if (c != '{')
                return;
            cur_.advance(1);
            runObject(0);
        }
        flushDescendantMatches();
    }

  private:
    /** ACCEPT: fast-forward over the value and report it (G3). */
    void
    emitValue()
    {
        telemetry::PhaseScope phase(telemetry::Phase::Emit);
        size_t start = cur_.pos();
        // The whole value span must stay resident until it is handed
        // to the sink, however many chunk seams it crosses.
        size_t saved = cur_.hold();
        cur_.setHold(std::min(saved, start));
        skip_.overValue(Group::G3);
        size_t end = cur_.pos();
        // Trim trailing whitespace a primitive skip may have crossed.
        while (end > start && json::isWhitespace(cur_.at(end - 1)))
            --end;
        ++result_.matches;
        if (sink_)
            sink_->onMatch(cur_.slice(start, end));
        cur_.setHold(saved);
    }

    /**
     * Process an object whose attributes are matched against step
     * @p state.  Entry: position just past '{'.  Exit: position just
     * past the matching '}'.
     */
    void
    runObject(size_t state)
    {
        skip_.setTraceState(static_cast<uint16_t>(state));
        const PathStep& st = q_[state];
        bool accept_child = (state + 1 == q_.size());
        bool desc_child =
            !accept_child &&
            q_[state + 1].kind == PathStep::Kind::Descendant;
        Skipper::TypeFilter filter =
            accept_child || desc_child || !options_.type_filter
                ? Skipper::TypeFilter::Any
            : q_[state + 1].isArrayStep() ? Skipper::TypeFilter::Array
                                          : Skipper::TypeFilter::Object;
        for (;;) {
            Skipper::AttrResult attr = skip_.toAttr(filter, Group::G1);
            if (!attr.found)
                return; // object consumed; includes G4-less exhaustion
            if (cur_.slice(attr.key_begin, attr.key_end) != st.key) {
                // G2: unmatched attribute — skip its value wholesale.
                skip_.overValue(Group::G2);
                continue;
            }
            if (accept_child) {
                emitValue(); // G3
            } else if (desc_child) {
                char c = cur_.current();
                if (c == '{') {
                    cur_.advance(1);
                    runDescObject();
                } else if (c == '[') {
                    cur_.advance(1);
                    runDescArray();
                } else {
                    skip_.overValue(Group::G2); // primitives: no match
                }
            } else {
                char want = q_[state + 1].isArrayStep() ? '[' : '{';
                if (cur_.current() != want) {
                    // Type mismatch at runtime (only reachable with the
                    // G1 filter disabled): the subtree cannot match.
                    skip_.overValue(Group::G2);
                    skip_.toObjEnd(Group::G4);
                    return;
                }
                cur_.advance(1); // consume '{' or '['
                if (want == '{')
                    runObject(state + 1);
                else
                    runArray(state + 1);
                skip_.setTraceState(static_cast<uint16_t>(state));
            }
            // G4: attribute names are unique per object — nothing else
            // in this object can match; fast-forward past its '}'.
            skip_.toObjEnd(Group::G4);
            return;
        }
    }

    /**
     * Process an array whose elements are matched against step
     * @p state.  Entry: position just past '['.  Exit: just past ']'.
     */
    void
    runArray(size_t state)
    {
        skip_.setTraceState(static_cast<uint16_t>(state));
        const PathStep& st = q_[state];
        bool accept_child = (state + 1 == q_.size());
        size_t idx = 0;
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            return;
        }
        // G5: skip the prefix below the range start without matching.
        if (st.lo > 0 &&
            skip_.overElems(st.lo, idx, Group::G5) == Skipper::ElemStop::End)
            return;
        for (;;) {
            if (idx >= st.hi) {
                // G5: the range is exhausted; nothing further can match.
                skip_.toAryEnd(Group::G5);
                return;
            }
            c = cur_.skipWhitespace();
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            if (accept_child) {
                emitValue(); // G3: every in-range element is a match
            } else if (q_[state + 1].kind == PathStep::Kind::Descendant) {
                if (c == '{') {
                    cur_.advance(1);
                    runDescObject();
                } else if (c == '[') {
                    cur_.advance(1);
                    runDescArray();
                } else {
                    skip_.overValue(Group::G2);
                }
            } else {
                char want = q_[state + 1].isArrayStep() ? '[' : '{';
                if (options_.type_filter) {
                    // G1: only elements of the expected container type
                    // can extend the match.
                    Skipper::ElemStop stop =
                        skip_.toTypedElem(want, idx, st.hi, Group::G1);
                    if (stop == Skipper::ElemStop::End)
                        return;
                    if (idx >= st.hi)
                        continue; // budget reached; loop skips out
                } else if (cur_.current() != want) {
                    skip_.overValue(Group::G2);
                    c = cur_.skipWhitespace();
                    if (c == ',') {
                        cur_.advance(1);
                        ++idx;
                        continue;
                    }
                    if (c == ']') {
                        cur_.advance(1);
                        return;
                    }
                    throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
                }
                cur_.advance(1); // consume '{' or '['
                if (want == '{')
                    runObject(state + 1);
                else
                    runArray(state + 1);
                skip_.setTraceState(static_cast<uint16_t>(state));
            }
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                ++idx;
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
    }

    /**
     * Descendant traversal (terminal `..name` step, an extension over
     * the paper): every attribute at any depth whose name matches is
     * a result.  Matches may nest, so container spans are recorded as
     * placeholder slots (end = kInFlight) patched once their end is
     * known; slot order is document pre-order.  Completed slots are
     * flushed to the sink as soon as no earlier slot is still open
     * (maybeFlushDesc), so chunked-mode retention is bounded by the
     * deepest *nested-match* chain, not by the document.  Only
     * primitive runs can still be fast-forwarded — the type-inference
     * limitation the paper predicts for `..`.
     *
     * Entry: position just past '{'.  Exit: just past the '}'.
     */
    void
    runDescObject()
    {
        // Descendant traversal belongs to the terminal `..name` step.
        skip_.setTraceState(static_cast<uint16_t>(q_.size() - 1));
        if (++desc_depth_ > kMaxDescDepth)
            throw ParseError(ErrorCode::DepthExceeded,
                             "nesting too deep for descendant traversal",
                             cur_.pos());
        const std::string& k = q_.steps.back().key;
        for (;;) {
            Skipper::AttrResult attr =
                skip_.toAttr(Skipper::TypeFilter::Any, Group::G1);
            if (!attr.found) {
                --desc_depth_;
                return;
            }
            bool matched =
                cur_.slice(attr.key_begin, attr.key_end) == k;
            char c = cur_.current();
            if (c == '{' || c == '[') {
                size_t slot = SIZE_MAX;
                if (matched) {
                    slot = desc_pending_.size();
                    desc_pending_.emplace_back(cur_.pos(), kInFlight);
                    maybeFlushDesc(); // pins the span before any refill
                }
                cur_.advance(1);
                if (c == '{')
                    runDescObject();
                else
                    runDescArray();
                if (matched) {
                    desc_pending_[slot].second = cur_.pos();
                    maybeFlushDesc();
                }
            } else if (matched) {
                size_t start = cur_.pos();
                size_t saved = cur_.hold();
                cur_.setHold(std::min(saved, start));
                skip_.overPrimitive(Group::G3);
                size_t end = cur_.pos();
                while (end > start &&
                       json::isWhitespace(cur_.at(end - 1)))
                    --end;
                cur_.setHold(saved);
                desc_pending_.emplace_back(start, end);
                maybeFlushDesc();
            } else {
                skip_.overPrimitive(Group::G2);
            }
        }
    }

    /** Entry: position just past '['.  Exit: just past the ']'. */
    void
    runDescArray()
    {
        if (++desc_depth_ > kMaxDescDepth)
            throw ParseError(ErrorCode::DepthExceeded,
                             "nesting too deep for descendant traversal",
                             cur_.pos());
        for (;;) {
            // Primitive elements cannot match a name: batch-skip them.
            if (skip_.toContainerElem(Group::G1) ==
                Skipper::ElemStop::End) {
                --desc_depth_;
                return;
            }
            char c = cur_.current();
            cur_.advance(1);
            if (c == '{')
                runDescObject();
            else
                runDescArray();
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                --desc_depth_;
                return;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
    }

    /**
     * Deliver every completed slot not blocked by an earlier in-flight
     * one (pre-order is preserved because slots are recorded in
     * pre-order), then retarget the consumer hold at the earliest slot
     * still unflushed — or drop it when none remain.
     */
    void
    maybeFlushDesc()
    {
        while (desc_flushed_ < desc_pending_.size() &&
               desc_pending_[desc_flushed_].second != kInFlight) {
            auto [start, end] = desc_pending_[desc_flushed_];
            ++result_.matches;
            if (sink_)
                sink_->onMatch(cur_.slice(start, end));
            ++desc_flushed_;
        }
        if (desc_flushed_ == desc_pending_.size()) {
            // Fully drained: indices held on the stack are only live
            // while their slot is in-flight, so resetting is safe.
            desc_pending_.clear();
            desc_flushed_ = 0;
            cur_.setHold(StreamCursor::kNoHold);
        } else {
            cur_.setHold(desc_pending_[desc_flushed_].first);
        }
    }

    /** End-of-pass safety net; incremental flushing empties the list. */
    void
    flushDescendantMatches()
    {
        maybeFlushDesc();
        assert(desc_pending_.empty() && "descendant slot left in flight");
    }

    static constexpr int kMaxDescDepth = 20000;
    static constexpr size_t kInFlight = SIZE_MAX;

    const PathQuery& q_;
    const StreamerOptions& options_;
    StreamCursor cur_;
    Skipper skip_;
    MatchSink* sink_;
    StreamResult& result_;
    std::vector<std::pair<size_t, size_t>> desc_pending_;
    size_t desc_flushed_ = 0; ///< slots already delivered to the sink
    int desc_depth_ = 0;
};

} // namespace

StreamResult
Streamer::run(std::string_view json, MatchSink* sink) const
{
    if (size_t chunk = testChunkBytesOverride()) {
        intervals::ViewSource source(json);
        return run(source, sink, chunk);
    }
    return runResident(json, sink);
}

StreamResult
Streamer::runResident(std::string_view json, MatchSink* sink) const
{
    StreamResult result;
    Driver driver(query_, options_, json, sink, result);
    try {
        driver.run();
    } catch (const StopStreaming&) {
        // A sink requested early termination; the partial result
        // (matches delivered so far) is valid.
    }
    driver.finish();
    return result;
}

StreamResult
Streamer::run(intervals::ChunkSource& source, MatchSink* sink,
              size_t chunk_bytes) const
{
    StreamResult result;
    Driver driver(query_, options_, source, chunk_bytes, sink, result);
    try {
        driver.run();
    } catch (const StopStreaming&) {
    }
    driver.finish();
    return result;
}

QueryResult
query(std::string_view json, std::string_view path_text, bool collect)
{
    Streamer streamer(path::parse(path_text));
    QueryResult out;
    if (collect) {
        CollectSink sink;
        StreamResult r = streamer.run(json, &sink);
        out.count = r.matches;
        out.stats = r.stats;
        out.values = std::move(sink.values);
    } else {
        StreamResult r = streamer.run(json);
        out.count = r.matches;
        out.stats = r.stats;
    }
    return out;
}

} // namespace jsonski::ski
