#include "ski/record_reader.h"

#include <algorithm>
#include <cstring>

#include "json/text.h"
#include "ski/record_scanner.h"
#include "util/error.h"

namespace jsonski::ski {

RecordReader::RecordReader(std::istream& in, size_t buffer_size)
    : owned_(in), src_(&*owned_),
      buffer_(std::max<size_t>(buffer_size, 256))
{}

RecordReader::RecordReader(intervals::ChunkSource& source,
                           size_t buffer_size)
    : src_(&source), buffer_(std::max<size_t>(buffer_size, 256))
{}

void
RecordReader::refill()
{
    // Slide the unconsumed tail to the front.
    if (begin_ > 0) {
        std::memmove(buffer_.data(), buffer_.data() + begin_,
                     end_ - begin_);
        end_ -= begin_;
        begin_ = 0;
    }
    if (end_ == buffer_.size()) {
        // The tail record does not fit: grow so progress is possible.
        buffer_.resize(buffer_.size() * 2);
    }
    size_t got = src_->read(buffer_.data() + end_, buffer_.size() - end_);
    end_ += got;
    if (got == 0)
        eof_ = true;
}

bool
RecordReader::next(std::string_view& record)
{
    for (;;) {
        if (pending_next_ < pending_.size()) {
            auto [off, len] = pending_[pending_next_++];
            record = std::string_view(buffer_.data() + off, len);
            ++records_read_;
            bytes_read_ += len;
            return true;
        }

        if (eof_ && begin_ >= end_)
            return false;

        // Need more complete records: refill and rescan the window.
        if (!eof_)
            refill();
        std::string_view window(buffer_.data() + begin_, end_ - begin_);
        size_t tail = 0;
        auto spans = scanRecords(window, &tail);
        pending_.clear();
        pending_next_ = 0;
        for (auto [off, len] : spans)
            pending_.emplace_back(begin_ + off, len);
        size_t consumed = begin_ + tail;
        if (pending_.empty()) {
            if (eof_) {
                // Trailing content with no complete record.
                if (tail < window.size())
                    throw ParseError(ErrorCode::UnterminatedRecord,
                                     "unterminated trailing record",
                                     bytes_read_ + tail);
                begin_ = end_; // only whitespace left
                return false;
            }
            // The record spans past the buffer: loop refills (and
            // grows when full).
            continue;
        }
        begin_ = consumed;
        // A malformed trailing fragment (at eof) is reported once the
        // complete records ahead of it have been delivered: the next
        // call rescans just the tail and throws above.
    }
}

} // namespace jsonski::ski
