/**
 * @file
 * Bit-parallel record scanner for the small-records scenario.
 *
 * A JSON data stream often arrives as a sequence of records
 * (concatenated or newline-delimited) *without* an offset table.  The
 * scanner recovers the record spans with the same block classification
 * the fast-forward layer uses: inside a record, whole blocks are
 * crossed with two popcounts (depth can provably not reach zero);
 * only blocks where the depth gets close to zero are examined bit by
 * bit.  No tokenization, no per-character state machine.
 *
 * Root-level records must be objects or arrays (the unambiguous case;
 * bare scalars at the top level are rejected).
 */
#ifndef JSONSKI_SKI_RECORD_SCANNER_H
#define JSONSKI_SKI_RECORD_SCANNER_H

#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

namespace jsonski::ski {

/**
 * Scan @p stream and return the (offset, length) span of every
 * complete top-level record.
 *
 * @param tail_start When null, an unterminated trailing record throws.
 *        When non-null, partial input is allowed: *tail_start receives
 *        the offset where the unterminated record begins (or the
 *        position after the last complete record when only whitespace
 *        follows) — the resume point for incremental readers.
 *
 * @throws jsonski::ParseError on stray characters between records,
 *         unbalanced containers, or a scalar at the top level.
 */
std::vector<std::pair<size_t, size_t>>
scanRecords(std::string_view stream, size_t* tail_start = nullptr);

} // namespace jsonski::ski

#endif // JSONSKI_SKI_RECORD_SCANNER_H
