/**
 * @file
 * Convenience sinks and early termination for the streaming API.
 *
 * Sinks may throw StopStreaming from onMatch() to abort the pass;
 * Streamer::run catches it and returns the partial result.  Combined
 * with fast-forwarding this makes "first match" probes nearly free
 * even on huge inputs.
 */
#ifndef JSONSKI_SKI_SINKS_H
#define JSONSKI_SKI_SINKS_H

#include <cstddef>
#include <string>
#include <string_view>

#include "json/text.h"
#include "path/matches.h"

namespace jsonski::ski {

/** Thrown by a sink to stop the streaming pass early. */
struct StopStreaming
{
};

/** Stops the pass after @p limit matches (collects them). */
class LimitSink : public path::MatchSink
{
  public:
    explicit LimitSink(size_t limit) : limit_(limit) {}

    void
    onMatch(std::string_view value) override
    {
        values.push_back(std::string(value));
        if (values.size() >= limit_)
            throw StopStreaming{};
    }

    std::vector<std::string> values;

  private:
    size_t limit_;
};

/**
 * Collects string matches with JSON escapes decoded (non-string
 * matches are kept verbatim).
 */
class UnescapeSink : public path::MatchSink
{
  public:
    void
    onMatch(std::string_view value) override
    {
        if (value.size() >= 2 && value.front() == '"' &&
            value.back() == '"') {
            values.push_back(
                json::unescapeString(value.substr(1, value.size() - 2)));
        } else {
            values.push_back(std::string(value));
        }
    }

    std::vector<std::string> values;
};

/**
 * Streams matches into one output buffer with a separator — e.g. an
 * NDJSON projection of the matched subtrees.
 */
class ConcatSink : public path::MatchSink
{
  public:
    explicit ConcatSink(std::string separator = "\n")
        : separator_(std::move(separator))
    {}

    void
    onMatch(std::string_view value) override
    {
        out.append(value);
        out.append(separator_);
    }

    std::string out;

  private:
    std::string separator_;
};

} // namespace jsonski::ski

#endif // JSONSKI_SKI_SINKS_H
