#include "ski/explain.h"

#include <sstream>

namespace jsonski::ski {

using path::ExpectedType;
using path::PathQuery;
using path::PathStep;

namespace {

const char*
typeName(ExpectedType t)
{
    switch (t) {
      case ExpectedType::Object: return "OBJECT";
      case ExpectedType::Array: return "ARRAY";
      case ExpectedType::Any: return "any";
    }
    return "?";
}

} // namespace

std::string
explain(const PathQuery& query)
{
    std::ostringstream out;
    out << query.toString() << "\n";
    if (query.empty()) {
        out << "  level 0  accept : emit the whole record [G3]\n";
        return out.str();
    }
    for (size_t i = 0; i < query.size(); ++i) {
        const PathStep& s = query[i];
        ExpectedType vt = query.expectedTypeAfter(i);
        bool last = i + 1 == query.size();
        out << "  level " << i << "  ";
        switch (s.kind) {
          case PathStep::Kind::Key:
            out << "object : match key \"" << s.key
                << "\" -> value must be " << typeName(vt) << "\n"
                << "           ";
            if (vt != ExpectedType::Any)
                out << "[G1 skip non-" << typeName(vt) << " attrs] ";
            out << "[G2 skip unmatched values] [G4 leave object after "
                   "the match]";
            break;
          case PathStep::Kind::Index:
            out << "array  : element [" << s.lo << "] -> must be "
                << typeName(vt) << "\n           "
                << "[G5 skip elements before/after the index]";
            if (vt != ExpectedType::Any)
                out << " [G1 skip non-" << typeName(vt) << " elements]";
            break;
          case PathStep::Kind::Slice:
            out << "array  : elements [" << s.lo << ":" << s.hi
                << ") -> must be " << typeName(vt) << "\n           "
                << "[G5 skip out-of-range elements]";
            if (vt != ExpectedType::Any)
                out << " [G1 skip non-" << typeName(vt) << " elements]";
            break;
          case PathStep::Kind::Wildcard:
            out << "array  : every element -> must be " << typeName(vt)
                << "\n           ";
            if (vt != ExpectedType::Any)
                out << "[G1 skip non-" << typeName(vt) << " elements]";
            else
                out << "[no element skipping: all elements examined]";
            break;
          case PathStep::Kind::Descendant:
            out << "deep   : match key \"" << s.key
                << "\" at ANY depth\n           "
                << "[type inference disabled: only primitive runs "
                   "fast-forward (G1)]";
            break;
          case PathStep::Kind::Filter: {
            PathQuery one;
            one.steps.push_back(s);
            out << "array  : filter " << one.toString().substr(1)
                << " -> candidates must be OBJECT\n           "
                << "[G1 skip non-OBJECT elements] [G2 skip the rest of "
                   "a failed candidate] [G3 keep a passing candidate]";
            break;
          }
        }
        out << "\n";
        if (last) {
            out << "  level " << i + 1
                << "  accept : emit matched values [G3 skip while "
                   "outputting]\n";
        }
    }
    return out.str();
}

} // namespace jsonski::ski
