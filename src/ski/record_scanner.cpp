#include "ski/record_scanner.h"

#include <algorithm>

#include "intervals/classifier.h"
#include "telemetry/telemetry.h"
#include "util/bits.h"
#include "util/error.h"

namespace jsonski::ski {

using intervals::kBlockSize;

std::vector<std::pair<size_t, size_t>>
scanRecords(std::string_view stream, size_t* tail_start)
{
    std::vector<std::pair<size_t, size_t>> spans;
    intervals::ClassifierCarry carry;

    int64_t depth = 0;
    size_t record_start = 0;
    bool in_record = false;

    telemetry::PhaseScope phase(telemetry::Phase::Classify);
    for (size_t base = 0; base < stream.size(); base += kBlockSize) {
        telemetry::count(telemetry::Counter::BlocksClassified);
        telemetry::count(telemetry::Counter::BytesScanned, kBlockSize);
        size_t len = std::min(kBlockSize, stream.size() - base);
        const char* d = stream.data() + base;
        char padded[kBlockSize];
        if (len < kBlockSize) {
            std::fill(padded, padded + kBlockSize, ' ');
            std::copy(d, d + len, padded);
            d = padded;
        }
        intervals::StringBits s =
            intervals::classifyStringsBlock(d, carry);
        uint64_t outside = ~s.in_string;
        uint64_t opens = (intervals::rawEqBits(d, '{') |
                          intervals::rawEqBits(d, '[')) &
                         outside;
        uint64_t closes = (intervals::rawEqBits(d, '}') |
                           intervals::rawEqBits(d, ']')) &
                          outside;

        // Fast path: when the depth cannot reach zero inside this
        // block even if every close came first, the whole block is
        // interior to the current record.
        if (in_record && depth > bits::popcount(closes)) {
            depth += bits::popcount(opens) - bits::popcount(closes);
            continue;
        }

        // Slow path: walk the structural bits of this block in order.
        // Between records, every non-whitespace byte is also examined
        // so stray characters are rejected.
        uint64_t interesting = opens | closes;
        uint64_t nonws = ~intervals::rawWhitespaceBits(d) & outside;
        uint64_t pending = interesting | (in_record ? 0 : nonws);
        while (pending != 0) {
            int off = bits::trailingZeros(pending);
            pending = bits::clearLowest(pending);
            uint64_t bit = uint64_t{1} << off;
            size_t pos = base + static_cast<size_t>(off);
            if (opens & bit) {
                if (!in_record) {
                    in_record = true;
                    record_start = pos;
                }
                ++depth;
            } else if (closes & bit) {
                if (!in_record || depth == 0)
                    throw ParseError(ErrorCode::UnbalancedClose, "unbalanced close",
                                     pos);
                if (--depth == 0) {
                    spans.emplace_back(record_start,
                                       pos + 1 - record_start);
                    in_record = false;
                    // Re-arm stray detection for the rest of the block.
                    pending |= nonws & ~bits::maskBelow(off + 1) &
                               ~interesting;
                }
            } else if (!in_record) {
                throw ParseError(ErrorCode::StrayByte,
                                 "stray character between records", pos);
            }
            // else: record content; nothing to do.
        }
    }
    if (tail_start != nullptr) {
        // When not mid-record, everything after the last record is
        // whitespace (strays were rejected above); resume past it.
        *tail_start = in_record ? record_start : stream.size();
        return spans;
    }
    if (in_record)
        throw ParseError(ErrorCode::UnterminatedRecord, "unterminated record",
                         stream.size());
    return spans;
}

} // namespace jsonski::ski
