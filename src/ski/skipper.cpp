#include "ski/skipper.h"

#include <cassert>

#include "kernels/kernel.h"
#include "util/error.h"

namespace jsonski::ski {

using intervals::BlockBits;
using intervals::kBlockSize;

void
Skipper::consume(char expected)
{
    char c = cur_.skipWhitespace();
    if (c != expected)
        throw ParseError(ErrorCode::ExpectedPunctuation,
                         std::string("expected '") + expected + "'",
                         cur_.pos());
    cur_.advance(1);
}

void
Skipper::overValue(Group g)
{
    char c = cur_.skipWhitespace();
    switch (c) {
      case '{':
        overObj(g);
        break;
      case '[':
        overAry(g);
        break;
      case '\0':
        throw ParseError(ErrorCode::UnexpectedEnd, "unexpected end of input",
                         cur_.pos());
      default:
        overPrimitive(g);
        break;
    }
}

void
Skipper::overObj(Group g)
{
    cur_.skipWhitespace();
    size_t start = cur_.pos();
    consume('{');
    // The consumed opener is a *child* of the container the driver is
    // inside, so its closer lives one level below (structural_scan.h).
    closeContainer(/*object=*/true, /*depth=*/1, g, start,
                   indexedLevel() + 1);
}

void
Skipper::overAry(Group g)
{
    cur_.skipWhitespace();
    size_t start = cur_.pos();
    consume('[');
    closeContainer(/*object=*/false, /*depth=*/1, g, start,
                   indexedLevel() + 1);
}

void
Skipper::toObjEnd(Group g)
{
    closeContainer(/*object=*/true, /*depth=*/1, g, cur_.pos(),
                   indexedLevel());
}

void
Skipper::toAryEnd(Group g)
{
    closeContainer(/*object=*/false, /*depth=*/1, g, cur_.pos(),
                   indexedLevel());
}

void
Skipper::closeContainer(bool object, uint64_t depth, Group g,
                        size_t account_from, int64_t close_level)
{
    assert(depth > 0);
    telemetry::PhaseScope phase(telemetry::Phase::Pair);
    size_t start = account_from;
    const char open_ch = object ? '{' : '[';
    const char close_ch = object ? '}' : ']';
    if (depth == 1 && indexable(close_level)) {
        // Warm path (G4): the level bitmap holds exactly one closer in
        // the remainder of this container — its own — so the target is
        // a single next-bit query, and the cursor teleports there with
        // the index's entry carry instead of pairing block by block.
        // The byte itself is still verified: a stale or foreign index
        // (the caller owns the identity check) surfaces as
        // IndexMismatch, never as silently wrong output.
        auto level = static_cast<size_t>(close_level);
        size_t target = index_->nextClose(level, cur_.pos());
        if (target == index::StructuralIndex::kNone ||
            !cur_.warpTo(target, index_->carryFor(target / kBlockSize)))
            throw ParseError(ErrorCode::IndexMismatch,
                             "structural index has no closer for this "
                             "container",
                             cur_.pos());
        if (cur_.at(target) != close_ch)
            throw ParseError(ErrorCode::IndexMismatch,
                             "structural index points at the wrong "
                             "closer",
                             target);
        cur_.setPos(target + 1);
        account(g, start, cur_.pos());
        return;
    }
    while (!cur_.atEnd()) {
        telemetry::count(telemetry::Counter::PairingProbeWords);
        size_t base = cur_.blockIndex() * kBlockSize;
        uint64_t opens = cur_.maskFromPos(cur_.bits(open_ch));
        uint64_t closes = cur_.maskFromPos(cur_.bits(close_ch));
        // Walk the word interval by interval (Algorithm 4): each opener
        // bounds a structural interval; closers inside it are counted
        // against the unpaired-opener total (Theorem 4.3).  The
        // unpaired count is kept in 64 bits: an all-opener input grows
        // it by at most 64 per block, so it is bounded by size() and
        // cannot overflow the way a 32-bit counter could.
        for (;;) {
            if (opens == 0) {
                uint64_t n = static_cast<uint64_t>(bits::popcount(closes));
                if (n >= depth) {
                    int off =
                        kernels::selectBit(closes, static_cast<int>(depth));
                    cur_.setPos(base + static_cast<size_t>(off) + 1);
                    account(g, start, cur_.pos());
                    return;
                }
                depth -= n;
                break; // interval continues into the next word
            }
            uint64_t below = bits::maskBelowLowest(opens);
            uint64_t closes_before = closes & below;
            uint64_t n = static_cast<uint64_t>(bits::popcount(closes_before));
            if (n >= depth) {
                int off =
                    kernels::selectBit(closes_before, static_cast<int>(depth));
                cur_.setPos(base + static_cast<size_t>(off) + 1);
                account(g, start, cur_.pos());
                return;
            }
            depth = depth - n + 1; // the interval-ending opener is unpaired
            closes &= ~below;
            opens = bits::clearLowest(opens);
        }
        cur_.setPos(base + kBlockSize);
    }
    cur_.setPos(cur_.size()); // never leave the position past the input
    throw ParseError(object ? ErrorCode::UnterminatedObject
                            : ErrorCode::UnterminatedArray,
                     object ? "unterminated object" : "unterminated array",
                     start);
}

void
Skipper::overPrimitive(Group g)
{
    telemetry::PhaseScope phase(telemetry::Phase::Skip);
    size_t start = cur_.pos();
    while (!cur_.atEnd()) {
        size_t base = cur_.blockIndex() * kBlockSize;
        uint64_t stops = cur_.maskFromPos(cur_.bits3(',', '}', ']'));
        if (stops != 0) {
            cur_.setPos(base +
                        static_cast<size_t>(bits::trailingZeros(stops)));
            account(g, start, cur_.pos());
            return;
        }
        cur_.setPos(base + kBlockSize);
    }
    // A bare root-level primitive runs to the end of input.
    cur_.setPos(cur_.size());
    account(g, start, cur_.pos());
}

size_t
Skipper::stringEnd(size_t open_pos)
{
    size_t block = open_pos / kBlockSize;
    int off = static_cast<int>(open_pos % kBlockSize);
    uint64_t q = cur_.stringsAt(block).quote & ~bits::maskBelow(off + 1);
    while (q == 0) {
        ++block;
        // ensureBlock refills from the chunk source when the string
        // runs past the ingestion frontier; only a false return (the
        // input truly ends inside the string) is an error.
        if (!cur_.ensureBlock(block))
            throw ParseError(ErrorCode::UnterminatedString,
                             "unterminated string", open_pos);
        q = cur_.stringsAt(block).quote;
    }
    return block * kBlockSize +
           static_cast<size_t>(bits::trailingZeros(q)) + 1;
}

Skipper::ScanStop
Skipper::scanPrimitives(bool closer_is_brace, size_t max_seps, size_t& seps,
                        Group g)
{
    assert(seps < max_seps);
    telemetry::PhaseScope phase(telemetry::Phase::Skip);
    size_t start = cur_.pos();
    const char closer_ch = closer_is_brace ? '}' : ']';
    int64_t lvl = indexedLevel();
    if (indexable(lvl)) {
        // Warm path (G1/G5): at this container's level the bitmaps
        // hold exactly its child openers, its separators, and its own
        // closer, so the stop of the whole primitive run is one
        // next-bit query and the separators before it are a rank/
        // select.  Scan-hold and position land exactly where the
        // block-by-block scan leaves them, so downstream key recovery
        // (keyBefore) and chunked retention behave identically.
        auto level = static_cast<size_t>(lvl);
        size_t stop = index_->nextOpenOrClose(level, start);
        if (stop == index::StructuralIndex::kNone)
            throw ParseError(ErrorCode::IndexMismatch,
                             "structural index has no stop for this "
                             "primitive run",
                             start);
        size_t n = index_->countCommas(level, start, stop);
        size_t budget = max_seps - seps;
        if (n >= budget) {
            size_t k = index_->selectComma(level, start, stop, budget);
            assert(k != index::StructuralIndex::kNone);
            seps = max_seps;
            // Release bytes behind the budget separator before the
            // warp so the window recycles over the skipped span.
            cur_.setScanHold(k + 1);
            if (!cur_.warpTo(k, index_->carryFor(k / kBlockSize)))
                throw ParseError(ErrorCode::IndexMismatch,
                                 "input ends before the indexed "
                                 "separator",
                                 start);
            cur_.setPos(k + 1);
            account(g, start, cur_.pos());
            return ScanStop::SepBudget;
        }
        if (n != 0) {
            size_t last = index_->selectComma(level, start, stop, n);
            cur_.setScanHold(last + 1);
        }
        seps += n;
        if (!cur_.warpTo(stop, index_->carryFor(stop / kBlockSize)))
            throw ParseError(ErrorCode::IndexMismatch,
                             "input ends before the indexed stop",
                             start);
        cur_.setPos(stop);
        account(g, start, cur_.pos());
        char c = cur_.current();
        if (c == '{')
            return ScanStop::OpenBrace;
        if (c == '[')
            return ScanStop::OpenBracket;
        if (c == closer_ch)
            return ScanStop::Closer;
        throw ParseError(ErrorCode::IndexMismatch,
                         "structural index points at a foreign stop",
                         stop);
    }
    while (!cur_.atEnd()) {
        size_t base = cur_.blockIndex() * kBlockSize;
        uint64_t stops =
            cur_.maskFromPos(cur_.bits3('{', '[', closer_ch));
        uint64_t commas = cur_.maskFromPos(cur_.bits(','));
        uint64_t before =
            stops != 0 ? bits::maskBelowLowest(stops) : ~uint64_t{0};
        uint64_t commas_before = commas & before;
        size_t n = static_cast<size_t>(bits::popcount(commas_before));
        size_t budget = max_seps - seps;
        if (n >= budget) {
            int off =
                kernels::selectBit(commas_before, static_cast<int>(budget));
            seps = max_seps;
            cur_.setPos(base + static_cast<size_t>(off) + 1);
            account(g, start, cur_.pos());
            return ScanStop::SepBudget;
        }
        seps += n;
        if (n != 0) {
            // Release attribute names already scanned past: retain
            // only from after the last consumed separator, so the
            // keyBefore forward reparse (object mode) always reads
            // resident bytes while retention stays bounded by one
            // key, not by the length of the primitive run.
            int last = 63 - bits::leadingZeros(commas_before);
            cur_.setScanHold(base + static_cast<size_t>(last) + 1);
        }
        if (stops != 0) {
            cur_.setPos(base +
                        static_cast<size_t>(bits::trailingZeros(stops)));
            account(g, start, cur_.pos());
            char c = cur_.current();
            if (c == '{')
                return ScanStop::OpenBrace;
            if (c == '[')
                return ScanStop::OpenBracket;
            return ScanStop::Closer;
        }
        cur_.setPos(base + kBlockSize);
    }
    cur_.setPos(cur_.size());
    throw ParseError(closer_is_brace ? ErrorCode::UnterminatedObject
                                     : ErrorCode::UnterminatedArray,
                     "unexpected end of input while skipping primitives",
                     start);
}

Skipper::AttrResult
Skipper::toAttr(TypeFilter filter, Group g)
{
    for (;;) {
        char c = cur_.skipWhitespace();
        if (c == ',') {
            cur_.advance(1);
            c = cur_.skipWhitespace();
        }
        if (c == '}') {
            cur_.advance(1);
            cur_.clearScanHold();
            return {};
        }
        if (c != '"')
            throw ParseError(ErrorCode::BadAttributeName,
                             "expected attribute name", cur_.pos());
        // Pin the key: the cursor position moves past it (':', value
        // lookahead) before the caller slices it, and in batch mode
        // keyBefore re-parses forward from this hold.  Cleared on
        // every exit so retention never outlives the attribute.
        cur_.setScanHold(cur_.pos());
        size_t key_begin = cur_.pos() + 1;
        size_t key_close = stringEnd(cur_.pos()); // one past closing quote
        cur_.setPos(key_close);
        consume(':');
        c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::UnexpectedEnd,
                             "missing attribute value", cur_.pos());

        switch (filter) {
          case TypeFilter::Any:
            cur_.clearScanHold();
            return {true, key_begin, key_close - 1};
          case TypeFilter::Object:
            if (c == '{') {
                cur_.clearScanHold();
                return {true, key_begin, key_close - 1};
            }
            if (c == '[') {
                cur_.clearScanHold();
                overAry(g);
                continue;
            }
            break;
          case TypeFilter::Array:
            if (c == '[') {
                cur_.clearScanHold();
                return {true, key_begin, key_close - 1};
            }
            if (c == '{') {
                cur_.clearScanHold();
                overObj(g);
                continue;
            }
            break;
        }

        if (!batch_primitives_) {
            cur_.clearScanHold();
            overPrimitive(g); // one attribute at a time (ablation mode)
            continue;
        }
        // Primitive value under a container-type filter: batch-skip the
        // whole run of primitive attributes (enhanced goOverPriAttrs of
        // Algorithm 5) until a container value or the object end.
        size_t seps = 0;
        ScanStop stop = scanPrimitives(/*closer_is_brace=*/true,
                                       /*max_seps=*/SIZE_MAX, seps, g);
        if (stop == ScanStop::Closer) {
            cur_.advance(1); // consume '}'
            cur_.clearScanHold();
            return {};
        }
        bool is_object_value = (stop == ScanStop::OpenBrace);
        if (is_object_value == (filter == TypeFilter::Object)) {
            AttrResult r = keyBefore(cur_.pos());
            r.found = true;
            cur_.clearScanHold();
            return r;
        }
        // Wrong container type: skip the value and keep scanning.
        cur_.clearScanHold();
        if (is_object_value)
            overObj(g);
        else
            overAry(g);
    }
}

Skipper::AttrResult
Skipper::keyBefore(size_t value_pos) const
{
    telemetry::count(telemetry::Counter::PairingFallbackParses);
    auto is_ws = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    };
    // Re-parse the attribute name FORWARD from the scan hold rather
    // than scanning backward from the value.  The batched scan retains
    // every byte from just after the last consumed separator (or from
    // the first key of the run), so all of [scanHold, value_pos) is
    // resident in chunked mode.  A backward scan has no such floor: on
    // malformed input its quote/escape search can walk below the
    // retention window into discarded bytes.
    size_t i = cur_.scanHold();
    assert(i != intervals::StreamCursor::kNoHold && i <= value_pos);
    while (i < value_pos && is_ws(cur_.at(i)))
        ++i;
    if (i == value_pos || cur_.at(i) != '"')
        throw ParseError(ErrorCode::BadAttributeName,
                         "expected attribute name before ':'", i);
    size_t key_begin = i + 1;
    size_t j = key_begin;
    bool escaped = false;
    while (j < value_pos) {
        char c = cur_.at(j);
        if (escaped)
            escaped = false;
        else if (c == '\\')
            escaped = true;
        else if (c == '"')
            break;
        ++j;
    }
    if (j == value_pos)
        throw ParseError(ErrorCode::BadAttributeName,
                         "unterminated attribute name", key_begin - 1);
    size_t key_end = j; // index of the closing quote
    size_t k = j + 1;
    while (k < value_pos && is_ws(cur_.at(k)))
        ++k;
    if (k == value_pos || cur_.at(k) != ':')
        throw ParseError(ErrorCode::ExpectedPunctuation,
                         "expected ':' before attribute value", k);
    ++k;
    while (k < value_pos && is_ws(cur_.at(k)))
        ++k;
    if (k != value_pos)
        throw ParseError(ErrorCode::ExpectedPunctuation,
                         "expected ':' before attribute value", k);
    AttrResult r;
    r.key_begin = key_begin;
    r.key_end = key_end;
    return r;
}

Skipper::ElemStop
Skipper::toTypedElem(char open_char, size_t& idx, size_t limit, Group g)
{
    assert(open_char == '{' || open_char == '[');
    for (;;) {
        if (idx >= limit) {
            cur_.clearScanHold();
            return ElemStop::Found; // budget reached; caller re-checks idx
        }
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            cur_.clearScanHold();
            return ElemStop::End;
        }
        if (c == '\0')
            throw ParseError(ErrorCode::UnterminatedArray,
                             "unterminated array", cur_.pos());
        if (c == open_char) {
            cur_.clearScanHold();
            return ElemStop::Found;
        }
        if (c == '{' || c == '[' || !batch_primitives_) {
            // Wrong-typed element (or per-element ablation mode): skip
            // it whole, then its separator.  Any scan hold left by a
            // batched run would pin the window open across the whole
            // skipped container, so drop it first.
            cur_.clearScanHold();
            if (c == '{')
                overObj(g);
            else if (c == '[')
                overAry(g);
            else
                overPrimitive(g);
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                ++idx;
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                return ElemStop::End;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
        // Primitive run: batch-skip, counting elements via separators.
        size_t seps = 0;
        ScanStop stop =
            scanPrimitives(/*closer_is_brace=*/false, limit - idx, seps, g);
        idx += seps;
        if (stop == ScanStop::Closer) {
            cur_.advance(1); // consume ']'
            cur_.clearScanHold();
            return ElemStop::End;
        }
        // SepBudget / OpenBrace / OpenBracket: loop re-examines.
    }
}

Skipper::ElemStop
Skipper::toContainerElem(Group g)
{
    for (;;) {
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            cur_.clearScanHold();
            return ElemStop::End;
        }
        if (c == '\0')
            throw ParseError(ErrorCode::UnterminatedArray,
                             "unterminated array", cur_.pos());
        if (c == '{' || c == '[') {
            cur_.clearScanHold();
            return ElemStop::Found;
        }
        size_t seps = 0;
        ScanStop stop =
            scanPrimitives(/*closer_is_brace=*/false, SIZE_MAX, seps, g);
        if (stop == ScanStop::Closer) {
            cur_.advance(1);
            cur_.clearScanHold();
            return ElemStop::End;
        }
        // OpenBrace / OpenBracket: re-examined at the loop top.
    }
}

Skipper::ElemStop
Skipper::overElems(size_t count, size_t& idx, Group g)
{
    size_t target = idx + count;
    for (;;) {
        if (idx >= target) {
            cur_.clearScanHold();
            return ElemStop::Found;
        }
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            cur_.clearScanHold();
            return ElemStop::End;
        }
        if (c == '\0')
            throw ParseError(ErrorCode::UnterminatedArray,
                             "unterminated array", cur_.pos());
        if (c == '{' || c == '[' || !batch_primitives_) {
            cur_.clearScanHold();
            if (c == '{')
                overObj(g);
            else if (c == '[')
                overAry(g);
            else
                overPrimitive(g);
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                ++idx;
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                return ElemStop::End;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
        size_t seps = 0;
        ScanStop stop =
            scanPrimitives(/*closer_is_brace=*/false, target - idx, seps, g);
        idx += seps;
        if (stop == ScanStop::Closer) {
            cur_.advance(1);
            cur_.clearScanHold();
            return ElemStop::End;
        }
        // SepBudget: pos is at the next element; loop exits at the top.
        // OpenBrace/OpenBracket: container element; handled next round.
    }
}

} // namespace jsonski::ski
