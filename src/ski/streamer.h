/**
 * @file
 * Recursive-descent streaming with fast-forwarding — the JSONSki core
 * (paper Algorithm 2 integrated with the G1..G5 primitives).
 *
 * The streamer walks the input with a Skipper, descending recursively
 * only along the query's match path; everything irrelevant is
 * fast-forwarded.  Recursion depth is therefore bounded by the query
 * length, not by the data's nesting depth.
 */
#ifndef JSONSKI_SKI_STREAMER_H
#define JSONSKI_SKI_STREAMER_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "path/automaton.h"
#include "path/matches.h"
#include "ski/skipper.h"
#include "ski/stats.h"

namespace jsonski::ski {

using path::CollectSink;
using path::MatchSink;

/** Outcome of one streaming pass. */
struct StreamResult
{
    size_t matches = 0;
    FastForwardStats stats;
};

/**
 * Tuning/ablation knobs for the streamer; defaults reproduce the
 * paper's full design.
 */
struct StreamerOptions
{
    /** G1 on/off: skip attributes/elements by inferred value type. */
    bool type_filter = true;

    /** Batched primitive-run skipping (enhanced goOverPriAttrs). */
    bool batch_primitives = true;

    /** Use the scalar reference classifier instead of SIMD. */
    bool scalar_classifier = false;
};

/**
 * Streaming query evaluator.  Construct once per query, run on any
 * number of inputs (a run is stateless with respect to the streamer).
 */
class Streamer
{
  public:
    explicit Streamer(path::PathQuery query, StreamerOptions options = {})
        : query_(std::move(query)), options_(options)
    {}

    /** The compiled query. */
    const path::PathQuery& query() const { return query_; }

    /**
     * Evaluate the query over one JSON record.
     *
     * @param json  The record text.
     * @param sink  Optional match receiver (null = count only).
     * @throws ParseError on malformed input along the traversed path.
     */
    StreamResult run(std::string_view json, MatchSink* sink = nullptr) const;

  private:
    path::PathQuery query_;
    StreamerOptions options_;
};

/**
 * One-call convenience API: evaluate @p path_text against @p json.
 *
 * @param collect  When true the matched values are copied out.
 */
struct QueryResult
{
    size_t count = 0;
    std::vector<std::string> values;
    FastForwardStats stats;
};

QueryResult query(std::string_view json, std::string_view path_text,
                  bool collect = false);

} // namespace jsonski::ski

#endif // JSONSKI_SKI_STREAMER_H
