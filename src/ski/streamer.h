/**
 * @file
 * Recursive-descent streaming with fast-forwarding — the JSONSki core
 * (paper Algorithm 2 integrated with the G1..G5 primitives).
 *
 * The streamer walks the input with a Skipper, descending recursively
 * only along the query's match path; everything irrelevant is
 * fast-forwarded.  Recursion depth is therefore bounded by the query
 * length, not by the data's nesting depth.
 */
#ifndef JSONSKI_SKI_STREAMER_H
#define JSONSKI_SKI_STREAMER_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "intervals/chunk_source.h"
#include "intervals/cursor.h"
#include "path/automaton.h"
#include "path/matches.h"
#include "ski/skipper.h"
#include "ski/stats.h"

namespace jsonski::index {
class StructuralIndex;
}

namespace jsonski::ski {

using path::CollectSink;
using path::MatchSink;

/** Outcome of one streaming pass. */
struct StreamResult
{
    size_t matches = 0;
    FastForwardStats stats;

    /** Bytes of the record ingested (== record size on success). */
    size_t input_bytes = 0;

    /** Chunked-ingestion accounting; zeros for whole-buffer runs. */
    intervals::StreamCursor::IngestStats ingest;
};

/**
 * Tuning/ablation knobs for the streamer; defaults reproduce the
 * paper's full design.
 */
struct StreamerOptions
{
    /** G1 on/off: skip attributes/elements by inferred value type. */
    bool type_filter = true;

    /** Batched primitive-run skipping (enhanced goOverPriAttrs). */
    bool batch_primitives = true;

    /** Use the scalar reference classifier instead of SIMD. */
    bool scalar_classifier = false;
};

/**
 * Streaming query evaluator.  Construct once per query, run on any
 * number of inputs (a run is stateless with respect to the streamer).
 */
class Streamer
{
  public:
    explicit Streamer(path::PathQuery query, StreamerOptions options = {})
        : query_(std::move(query)), options_(options)
    {}

    /** The compiled query. */
    const path::PathQuery& query() const { return query_; }

    /** Default refill granularity for chunked runs (64 KiB). */
    static constexpr size_t kDefaultChunkBytes = size_t{1} << 16;

    /**
     * Evaluate the query over one JSON record.
     *
     * @param json  The record text.
     * @param sink  Optional match receiver (null = count only).
     * @throws ParseError on malformed input along the traversed path.
     *
     * Setting JSONSKI_TEST_CHUNK_BYTES=N in the environment reroutes
     * this overload through the chunked path with N-byte chunks, which
     * turns every whole-buffer caller into a chunk-seam test.
     */
    StreamResult run(std::string_view json, MatchSink* sink = nullptr) const;

    /**
     * Evaluate the query over a record delivered incrementally by a
     * ChunkSource, without ever materializing the document: resident
     * memory is bounded by @p chunk_bytes plus the largest span still
     * held for a sink (DESIGN.md §9).  Matches, error positions, and
     * FastForwardStats are byte-identical to the whole-buffer overload.
     */
    StreamResult run(intervals::ChunkSource& source,
                     MatchSink* sink = nullptr,
                     size_t chunk_bytes = kDefaultChunkBytes) const;

    /**
     * Whole-buffer evaluation that is never rerouted by
     * JSONSKI_TEST_CHUNK_BYTES.  Reserved for callers that require the
     * input to stay resident — the parallel splitter keeps zero-copy
     * views of @p json across its fan-out/merge phases.  Everything
     * else should call run().
     */
    StreamResult runResident(std::string_view json,
                             MatchSink* sink = nullptr) const;

    /**
     * Evaluate the query with a pre-built structural semi-index
     * (DESIGN.md §14) bound to the pass's skipper: G4/G5 container-end
     * targets and primitive-run stops are answered from the index's
     * level bitmaps and the cursor teleports to them, instead of
     * scanning the skipped bytes.  Matches, error positions, and match
     * counts are bit-identical to run(); only the work to produce them
     * changes.
     *
     * The caller owns the identity check: @p idx must have been built
     * from exactly these bytes (StructuralIndex::describes()) — this
     * method does not re-hash the input.  A !usable() index (the
     * document is structurally unclean) falls back to plain run(); a
     * *wrong* index for the document surfaces as
     * ParseError(ErrorCode::IndexMismatch), never as wrong output.
     *
     * JSONSKI_TEST_CHUNK_BYTES reroutes this overload through the
     * chunked variant exactly as it does for run().
     */
    StreamResult runIndexed(std::string_view json,
                            const index::StructuralIndex& idx,
                            MatchSink* sink = nullptr) const;

    /** Chunked counterpart of runIndexed(); the warp over a skipped
     *  span ingests and recycles the window as it goes, so residency
     *  bounds match the chunked run() overload. */
    StreamResult runIndexed(intervals::ChunkSource& source,
                            const index::StructuralIndex& idx,
                            MatchSink* sink = nullptr,
                            size_t chunk_bytes = kDefaultChunkBytes) const;

  private:
    path::PathQuery query_;
    StreamerOptions options_;
};

/**
 * One-call convenience API: evaluate @p path_text against @p json.
 *
 * @param collect  When true the matched values are copied out.
 */
struct QueryResult
{
    size_t count = 0;
    std::vector<std::string> values;
    FastForwardStats stats;
};

QueryResult query(std::string_view json, std::string_view path_text,
                  bool collect = false);

} // namespace jsonski::ski

#endif // JSONSKI_SKI_STREAMER_H
