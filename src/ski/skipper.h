/**
 * @file
 * Bit-parallel fast-forward primitives (paper Section 4, Table 1).
 *
 * The Skipper advances a StreamCursor over query-irrelevant
 * substructures without tokenizing them.  Object/array ends are located
 * with the counting-based pairing strategy of Lemma 4.2 / Theorem 4.3:
 * per 64-byte word, close-metacharacter population counts are compared
 * against the number of still-unpaired openers, and the terminating
 * close character is selected directly from the bitmap.  Runs of
 * primitive attributes/elements are skipped with comma structural
 * intervals (Algorithm 4/5), batching whole runs per word.
 *
 * Invariant for every public method: on entry and exit the cursor
 * position is outside any string literal.
 *
 * Error handling contract: every method is safe on malformed input.
 * Truncated, unbalanced, or otherwise damaged documents raise
 * jsonski::ParseError carrying an ErrorCode and the byte position where
 * the damage was detected; no method reads past the cursor's size() or
 * leaves the position beyond it.  assert() is reserved for caller
 * contract violations (e.g. a @pre not met), never for input content.
 */
#ifndef JSONSKI_SKI_SKIPPER_H
#define JSONSKI_SKI_SKIPPER_H

#include <cstddef>
#include <cstdint>
#include <limits>

#include "index/structural_index.h"
#include "intervals/cursor.h"
#include "ski/stats.h"
#include "telemetry/telemetry.h"

namespace jsonski::ski {

/** See file comment. */
class Skipper
{
  public:
    /** Result of the attribute scan. */
    struct AttrResult
    {
        bool found = false;     ///< false: object ended (pos after '}')
        size_t key_begin = 0;   ///< first byte of the attribute name
        size_t key_end = 0;     ///< one past last byte (quotes excluded)
    };

    /** Result of element-level scans. */
    enum class ElemStop {
        Found, ///< positioned at the start of an element
        End,   ///< array ended; position is just past ']'
    };

    /** Value-type filter used by the G1 attribute scan. */
    enum class TypeFilter { Object, Array, Any };

    /**
     * @param cursor Cursor to drive; must outlive the skipper.
     * @param stats  Optional per-group skip accounting (may be null).
     */
    explicit Skipper(intervals::StreamCursor& cursor,
                     FastForwardStats* stats = nullptr)
        : cur_(cursor), stats_(stats)
    {}

    /**
     * Disable the batched primitive-run skipping (the enhanced
     * goOverPriAttrs/goOverPriElems of Algorithm 5); primitives are
     * then skipped one comma interval at a time.  Ablation knob.
     */
    void setBatchPrimitives(bool on) { batch_primitives_ = on; }

    /**
     * Attach a structural semi-index (warm path, DESIGN.md §14): the
     * container-end and primitive-run scans then resolve their targets
     * from the index's per-level bitmaps and teleport the cursor there
     * (StreamCursor::warpTo) instead of scanning.  @p depth must point
     * at the driver's live container-depth counter (number of unclosed
     * openers the driver has consumed); the skipper derives the bitmap
     * level from it at each call.  Depths beyond @p idx->levels() fall
     * back to streaming silently; a disagreement between index and
     * document (stale or foreign index — the caller is responsible for
     * the identity check) raises ParseError(ErrorCode::IndexMismatch)
     * rather than ever producing wrong output.
     *
     * @pre idx->usable(), and *depth reflects the cursor's position
     *      whenever a skipper method runs.  Pass nullptr to detach.
     */
    void
    bindIndex(const index::StructuralIndex* idx, const int* depth)
    {
        index_ = idx;
        depth_ptr_ = depth;
    }

    /// @name G2/G3 value skipping
    /// @{

    /**
     * Skip one whole value of any type, dispatching on its first
     * non-whitespace character.  Containers end just past their closer;
     * primitives end at (not past) the terminating ',', '}' or ']'.
     */
    void overValue(Group g);

    /** goOverObj(): skip a whole object. @pre next non-ws char is '{'. */
    void overObj(Group g);

    /** goOverAry(): skip a whole array. @pre next non-ws char is '['. */
    void overAry(Group g);

    /**
     * goOverPriAttr()/goOverPriElem(): skip one primitive (number,
     * string, literal); position ends at the terminating ',' / '}' /
     * ']' or at end of input for a bare root primitive.
     */
    void overPrimitive(Group g);

    /// @}
    /// @name G4/G5 container-end skipping
    /// @{

    /**
     * goToObjEnd(): from a position inside an object (between
     * attributes or after a value), fast-forward just past its '}'.
     */
    void toObjEnd(Group g);

    /** goToAryEnd(): array counterpart of toObjEnd(). */
    void toAryEnd(Group g);

    /// @}
    /// @name G1 attribute scan
    /// @{

    /**
     * goToObjAttr()/goToAryAttr(): advance to the next attribute whose
     * value type passes @p filter, skipping non-matching attributes
     * wholesale (their names are never extracted).  With
     * TypeFilter::Any every attribute stops the scan.
     *
     * Entry position: the attribute-list position (just after '{', or
     * just after a consumed value).  A separating ',' is consumed here.
     *
     * On success the position is at the first character of the
     * attribute's value and the returned span is the attribute name.
     */
    AttrResult toAttr(TypeFilter filter, Group g);

    /// @}
    /// @name Element scans (G1/G5)
    /// @{

    /**
     * goToObjElem()/goToAryElem() with an element budget: skip elements
     * until one starts with @p open_char or @p idx reaches @p limit.
     * @p idx is advanced by the number of elements skipped.
     *
     * Entry/exit position: element start.  Returns End when the array
     * closed first (position past ']').
     */
    ElemStop toTypedElem(char open_char, size_t& idx, size_t limit,
                         Group g);

    /**
     * goOverElems(K): skip exactly @p count elements (fewer if the
     * array ends), advancing @p idx per element.  Exit position: start
     * of the following element, or past ']' on End.
     */
    ElemStop overElems(size_t count, size_t& idx, Group g);

    /**
     * Skip primitive elements (and their separators) until the next
     * container element of either type, used by descendant traversal
     * where element types cannot be inferred.  Exit: at '{' or '['
     * (Found), or just past ']' (End).
     */
    ElemStop toContainerElem(Group g);

    /// @}

    /**
     * Bit-parallel scan for the end of the string literal opening at
     * @p open_pos. @return index one past the closing quote.
     * @throws ParseError (UnterminatedString, positioned at @p open_pos)
     *         when the input ends before an unescaped closing quote.
     */
    size_t stringEnd(size_t open_pos);

    /** Consume expected punctuation after whitespace. */
    void consume(char expected);

    /**
     * Automaton state tag recorded with every fast-forward trace entry
     * (query step for the single-query driver, trie node id for the
     * multi-query driver).  Compiled to nothing when telemetry is off.
     */
    void
    setTraceState(uint16_t state)
    {
        if constexpr (telemetry::kEnabled)
            trace_state_ = state;
        else
            (void)state;
    }

  private:
    enum class ScanStop { OpenBrace, OpenBracket, Closer, SepBudget };

    /**
     * Core of the counting-based pairing strategy: advance past the
     * closer that brings @p depth unpaired openers to zero.  The scan
     * never reads past the input: every block it touches lies below
     * size(), and input that ends before the container balances throws
     * ParseError (UnterminatedObject / UnterminatedArray) positioned at
     * @p account_from.  Depth is tracked in 64 bits — an adversarial
     * input made of openers can push the unpaired count to size()
     * without overflow.
     *
     * @param object       true = braces, false = brackets.
     * @param account_from start of the span charged to @p g (callers
     *                     that consumed the opener include it here).
     * @param close_level  index level of the closer being sought (the
     *                     level convention of index/structural_scan.h):
     *                     indexedLevel() when closing the container the
     *                     driver is inside (toObjEnd/toAryEnd),
     *                     indexedLevel()+1 when the caller consumed a
     *                     child opener first (overObj/overAry).  Only
     *                     consulted when an index is bound and depth==1;
     *                     negative or out-of-range levels stream.
     */
    void closeContainer(bool object, uint64_t depth, Group g,
                        size_t account_from, int64_t close_level);

    /**
     * Skip consecutive primitives separated by commas, stopping at the
     * first '{' or '[' (position lands on it), at the level's closer
     * (position lands on it), or after @p max_seps separators have been
     * consumed (position lands just past the last one).
     *
     * @param closer_is_brace true in object context ('}'), false in
     *                        array context (']').
     * @param seps            incremented per separator consumed.
     */
    ScanStop scanPrimitives(bool closer_is_brace, size_t max_seps,
                            size_t& seps, Group g);

    /**
     * Recover the attribute name that precedes the container value at
     * @p value_pos (used when a batched primitive scan stops at a
     * container-typed value whose key was skimmed past).  Parses
     * forward from the scan hold so every byte read is resident in
     * chunked mode.
     */
    AttrResult keyBefore(size_t value_pos) const;

    /**
     * Bitmap level of the container the driver is currently inside
     * (its separators, its closer, and its child openers all live
     * there — index/structural_scan.h).  -1 when no driver depth is
     * bound or at root scope, which indexable() rejects.
     */
    int64_t
    indexedLevel() const
    {
        return depth_ptr_ != nullptr
                   ? static_cast<int64_t>(*depth_ptr_) - 1
                   : -1;
    }

    /** True when @p level can be answered from the bound index. */
    bool
    indexable(int64_t level) const
    {
        return index_ != nullptr && level >= 0 &&
               static_cast<size_t>(level) < index_->levels();
    }

    void
    account(Group g, size_t from, size_t to)
    {
        if (to <= from)
            return;
        if (stats_)
            stats_->add(g, to - from);
        // Telemetry records independently of stats_: phase-0 skippers
        // in parallel runs pass a null stats pointer but their skips
        // still belong in the trace.
        telemetry::recordSkip(static_cast<uint8_t>(g), from, to,
                              trace_state_);
    }

    intervals::StreamCursor& cur_;
    FastForwardStats* stats_;
    const index::StructuralIndex* index_ = nullptr;
    const int* depth_ptr_ = nullptr;
    bool batch_primitives_ = true;
    uint16_t trace_state_ = 0;
};

} // namespace jsonski::ski

#endif // JSONSKI_SKI_SKIPPER_H
