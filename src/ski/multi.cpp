#include "ski/multi.h"

#include <algorithm>

#include "intervals/cursor.h"
#include "json/text.h"
#include "ski/chunk_override.h"
#include "ski/sinks.h"
#include "ski/skipper.h"
#include "util/error.h"

namespace jsonski::ski {

using path::PathQuery;
using path::PathStep;

namespace {

/** Is @p kind compiled into the shared trie (vs a divergent suffix)? */
bool
isPlainStep(PathStep::Kind kind)
{
    return kind == PathStep::Kind::Key ||
           kind == PathStep::Kind::Index ||
           kind == PathStep::Kind::Slice ||
           kind == PathStep::Kind::Wildcard;
}

} // namespace

MultiStreamer::MultiStreamer(std::vector<PathQuery> queries)
    : set_(path::QuerySet::normalize(std::move(queries)))
{
    build();
}

MultiStreamer::MultiStreamer(path::QuerySet set) : set_(std::move(set))
{
    build();
}

void
MultiStreamer::build()
{
    trie_.emplace_back(); // root
    trie_[0].live = path::QueryBits(set_.size());
    for (size_t qi = 0; qi < set_.size(); ++qi) {
        const PathQuery& q = set_.distinct[qi];
        int node = 0;
        trie_[0].live.set(qi);
        size_t k = 0;
        for (; k < q.steps.size(); ++k) {
            const PathStep& step = q.steps[k];
            if (!isPlainStep(step.kind))
                break; // filter/descendant: the suffix diverges here
            int next = -1;
            if (step.kind == PathStep::Kind::Key) {
                for (auto& [key, child] : trie_[node].key_children) {
                    if (key == step.key) {
                        next = child;
                        break;
                    }
                }
                if (next < 0) {
                    next = static_cast<int>(trie_.size());
                    trie_[node].key_children.emplace_back(step.key, next);
                    trie_.emplace_back();
                    trie_.back().live = path::QueryBits(set_.size());
                }
            } else {
                for (auto& [s, child] : trie_[node].array_children) {
                    if (s == step) {
                        next = child;
                        break;
                    }
                }
                if (next < 0) {
                    next = static_cast<int>(trie_.size());
                    trie_[node].array_children.emplace_back(step, next);
                    trie_.emplace_back();
                    trie_.back().live = path::QueryBits(set_.size());
                }
            }
            node = next;
            trie_[node].live.set(qi);
        }
        if (k < q.steps.size()) {
            // Divergent suffix: `$` + the remaining steps, compiled
            // into a single-query engine replayed over the value at
            // this node.  Filter-first suffixes see the array they
            // select from; descendant-first suffixes search the value.
            PathQuery suffix;
            suffix.steps.assign(q.steps.begin() +
                                    static_cast<std::ptrdiff_t>(k),
                                q.steps.end());
            trie_[node].suffixes.push_back(suffixes_.size());
            suffixes_.push_back(Suffix{qi, Streamer(std::move(suffix))});
        } else {
            trie_[node].accepts.push_back(qi);
        }
    }

    // Type summary per node, for the G1 typed attribute scan.
    for (Node& n : trie_) {
        bool wants_obj = !n.key_children.empty();
        bool wants_ary = !n.array_children.empty();
        bool wants_any = !n.accepts.empty();
        for (size_t si : n.suffixes) {
            const PathStep& first =
                suffixes_[si].streamer.query().steps.front();
            if (first.kind == PathStep::Kind::Filter)
                wants_ary = true;
            else
                wants_any = true; // descendant: any container type
        }
        n.obj_only = wants_obj && !wants_ary && !wants_any;
        n.ary_only = wants_ary && !wants_obj && !wants_any;
    }
}

namespace {

using NodeSet = std::vector<int>;

/**
 * MatchSink adapter for a divergent-suffix replay: forwards each match
 * to the multi sink under the suffix's distinct query id, and records
 * whether the outer sink asked the *whole pass* to stop (the nested
 * Streamer::runResident catches StopStreaming itself, so the driver
 * must re-throw it to abort the shared walk).
 */
class SuffixSink final : public path::MatchSink
{
  public:
    SuffixSink(MultiSink* sink, size_t qi) : sink_(sink), qi_(qi) {}

    void
    onMatch(std::string_view value) override
    {
        if (sink_ == nullptr)
            return;
        try {
            sink_->onMatch(qi_, value);
        } catch (const StopStreaming&) {
            stopped = true;
            throw;
        }
    }

    bool stopped = false;

  private:
    MultiSink* sink_;
    size_t qi_;
};

} // namespace

/** One multi-query pass over a single record. */
class MultiDriver
{
  public:
    MultiDriver(const MultiStreamer& ms,
                const std::vector<MultiStreamer::Node>& trie,
                std::string_view json, MultiSink* sink,
                MultiStreamer::Result& result)
        : ms_(ms),
          trie_(trie),
          cur_(json),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result),
          emit_bits_(ms.queryCount())
    {}

    MultiDriver(const MultiStreamer& ms,
                const std::vector<MultiStreamer::Node>& trie,
                intervals::ChunkSource& source, size_t chunk_bytes,
                MultiSink* sink, MultiStreamer::Result& result)
        : ms_(ms),
          trie_(trie),
          cur_(source, chunk_bytes),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result),
          emit_bits_(ms.queryCount())
    {}

    /** Record ingestion totals once the pass is over. */
    void
    finish()
    {
        result_.input_bytes = cur_.size();
        result_.ingest = cur_.ingestStats();
    }

    void
    run()
    {
        char c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::UnexpectedEnd, "empty input", 0);
        NodeSet root{0};
        runValue(root, /*top=*/true);
    }

  private:
    const MultiStreamer::Node& node(int i) const { return trie_[i]; }

    void
    emitTo(const NodeSet& active, size_t begin, size_t end)
    {
        telemetry::PhaseScope phase(telemetry::Phase::Emit);
        while (end > begin && json::isWhitespace(cur_.at(end - 1)))
            --end;
        // Collect acceptors into a bitset first: one frame per
        // distinct query per value, by construction, in ascending-id
        // order regardless of active-set order.
        emit_bits_.clear();
        for (int n : active) {
            for (size_t qi : node(n).accepts)
                emit_bits_.set(qi);
        }
        emit_bits_.forEach([&](size_t qi) {
            ++result_.matches[qi];
            if (sink_)
                sink_->onMatch(qi, cur_.slice(begin, end));
        });
    }

    /**
     * Replay every divergent suffix registered on the active set over
     * the value span [begin, end): each suffix is a full single-query
     * engine (filters, descendants) running on the held-resident
     * bytes, reporting under its distinct query id.  Error positions
     * translate by the span offset, so malformed input surfaces at the
     * same absolute byte a solo run of the full query reports.
     */
    void
    replaySuffixes(const NodeSet& active, size_t begin, size_t end)
    {
        while (end > begin && json::isWhitespace(cur_.at(end - 1)))
            --end;
        std::string_view span = cur_.slice(begin, end);
        for (int n : active) {
            for (size_t si : node(n).suffixes) {
                const MultiStreamer::Suffix& suf = ms_.suffixes_[si];
                SuffixSink fwd(sink_, suf.qi);
                StreamResult r;
                try {
                    r = suf.streamer.runResident(span, &fwd);
                } catch (const ParseError& e) {
                    throw ParseError(e.code(),
                                     "in multi-query suffix",
                                     begin + e.position());
                }
                result_.matches[suf.qi] += r.matches;
                result_.stats.merge(r.stats);
                result_.per_query[suf.qi].merge(r.stats);
                if (fwd.stopped)
                    throw StopStreaming{};
            }
        }
    }

    /**
     * Process one value against the active node set.  @p top marks the
     * root value: on a root type mismatch (no live branch fits the
     * container, nothing accepts and no suffix wants the bytes) the
     * pass stops without ingesting the value, exactly like the
     * single-query engine — the scan is a prefix read, not a
     * validator, so the batched pass never pulls more chunks than the
     * slowest solo pass would.
     */
    void
    runValue(const NodeSet& active, bool top = false)
    {
        // Trace tag: representative trie node of the active set.
        skip_.setTraceState(static_cast<uint16_t>(active[0]));
        bool want_obj = false;
        bool want_ary = false;
        bool accepts = false;
        bool suffix = false;
        for (int n : active) {
            want_obj = want_obj || !node(n).key_children.empty();
            want_ary = want_ary || !node(n).array_children.empty();
            accepts = accepts || !node(n).accepts.empty();
            suffix = suffix || !node(n).suffixes.empty();
        }

        char c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::BadValue, "missing value", cur_.pos());
        size_t start = cur_.pos();
        size_t saved = intervals::StreamCursor::kNoHold;
        if (accepts || suffix) {
            // The value is reported whole (or replayed against the
            // divergent suffixes) once consumed: keep its span
            // resident across any chunk seams it straddles.
            saved = cur_.hold();
            cur_.setHold(std::min(saved, start));
        }
        if (c == '{' && want_obj) {
            cur_.advance(1);
            runObject(active);
        } else if (c == '[' && want_ary) {
            cur_.advance(1);
            runArray(active);
        } else if (top && !accepts && !suffix) {
            return; // root type mismatch: no live query can match
        } else {
            // Nothing deeper in the trie can match: fast-forward the
            // whole value (still resident when a suffix replays it).
            skip_.overValue((accepts || suffix) ? Group::G3 : Group::G2);
        }
        if (accepts)
            emitTo(active, start, cur_.pos());
        if (suffix)
            replaySuffixes(active, start, cur_.pos());
        if (accepts || suffix)
            cur_.setHold(saved);
    }

    /** Count of distinct attribute names the active set can match. */
    size_t
    distinctKeyCount(const NodeSet& active)
    {
        if (active.size() == 1)
            return node(active[0]).key_children.size();
        scratch_keys_.clear();
        for (int n : active) {
            for (const auto& [key, child] : node(n).key_children) {
                if (std::find(scratch_keys_.begin(), scratch_keys_.end(),
                              key) == scratch_keys_.end()) {
                    scratch_keys_.push_back(key);
                }
            }
        }
        return scratch_keys_.size();
    }

    /** Entry: position just past '{'.  Exit: just past the '}'. */
    void
    runObject(const NodeSet& active)
    {
        size_t remaining = distinctKeyCount(active);

        // A shared type filter is sound only when every candidate
        // attribute needs the same container type.
        Skipper::TypeFilter filter = sharedFilter(active);

        NodeSet targets;
        targets.reserve(4);
        for (;;) {
            Skipper::AttrResult attr = skip_.toAttr(filter, Group::G1);
            if (!attr.found)
                return;
            std::string_view key =
                cur_.slice(attr.key_begin, attr.key_end);
            targets.clear();
            for (int n : active) {
                for (const auto& [k, child] : node(n).key_children) {
                    if (k == key)
                        targets.push_back(child);
                }
            }
            if (targets.empty()) {
                skip_.overValue(Group::G2);
                continue;
            }
            runValue(targets);
            skip_.setTraceState(static_cast<uint16_t>(active[0]));
            // Generalized G4: abandon the object once every candidate
            // name has been seen (names are unique per object).
            if (--remaining == 0) {
                skip_.toObjEnd(Group::G4);
                return;
            }
        }
    }

    /** Entry: position just past '['.  Exit: just past the ']'. */
    void
    runArray(const NodeSet& active)
    {
        // Local copy: recursion below may reuse the scratch space.
        std::vector<std::pair<const PathStep*, int>> steps;
        steps.reserve(4);
        for (int n : active) {
            for (const auto& [step, child] : node(n).array_children)
                steps.emplace_back(&step, child);
        }
        size_t lo_min = SIZE_MAX;
        size_t hi_max = 0;
        for (auto& [step, child] : steps) {
            lo_min = std::min(lo_min, step->lo);
            hi_max = std::max(hi_max, step->hi);
        }

        size_t idx = 0;
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            return;
        }
        if (lo_min > 0 &&
            skip_.overElems(lo_min, idx, Group::G5) ==
                Skipper::ElemStop::End) {
            return;
        }
        NodeSet covering;
        for (;;) {
            if (idx >= hi_max) {
                skip_.toAryEnd(Group::G5);
                return;
            }
            c = cur_.skipWhitespace();
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            covering.clear();
            for (auto& [step, child] : steps) {
                if (step->coversIndex(idx))
                    covering.push_back(child);
            }
            if (covering.empty()) {
                skip_.overValue(Group::G5); // a gap between ranges
            } else {
                runValue(covering);
                skip_.setTraceState(static_cast<uint16_t>(active[0]));
            }
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                ++idx;
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
    }

    /** Object filter usable for *all* candidate attributes, or Any. */
    Skipper::TypeFilter
    sharedFilter(const NodeSet& active) const
    {
        bool all_obj = true;
        bool all_ary = true;
        for (int n : active) {
            for (const auto& [key, child] : node(n).key_children) {
                const MultiStreamer::Node& t = node(child);
                all_obj = all_obj && t.obj_only;
                all_ary = all_ary && t.ary_only;
            }
        }
        if (all_obj)
            return Skipper::TypeFilter::Object;
        if (all_ary)
            return Skipper::TypeFilter::Array;
        return Skipper::TypeFilter::Any;
    }

    const MultiStreamer& ms_;
    const std::vector<MultiStreamer::Node>& trie_;
    std::vector<std::string_view> scratch_keys_;
    intervals::StreamCursor cur_;
    Skipper skip_;
    MultiSink* sink_;
    MultiStreamer::Result& result_;
    path::QueryBits emit_bits_;
};

MultiStreamer::Result
MultiStreamer::run(std::string_view json, MultiSink* sink) const
{
    if (size_t chunk = testChunkBytesOverride()) {
        intervals::ViewSource source(json);
        return run(source, sink, chunk);
    }
    Result result;
    result.matches.assign(set_.size(), 0);
    result.per_query.assign(set_.size(), FastForwardStats{});
    MultiDriver driver(*this, trie_, json, sink, result);
    try {
        driver.run();
    } catch (const StopStreaming&) {
        // Early termination requested by the sink; partial result.
    }
    driver.finish();
    return result;
}

MultiStreamer::Result
MultiStreamer::run(intervals::ChunkSource& source, MultiSink* sink,
                   size_t chunk_bytes) const
{
    Result result;
    result.matches.assign(set_.size(), 0);
    result.per_query.assign(set_.size(), FastForwardStats{});
    MultiDriver driver(*this, trie_, source, chunk_bytes, sink, result);
    try {
        driver.run();
    } catch (const StopStreaming&) {
    }
    driver.finish();
    return result;
}

} // namespace jsonski::ski
