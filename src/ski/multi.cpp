#include "ski/multi.h"

#include <algorithm>

#include "intervals/cursor.h"
#include "json/text.h"
#include "ski/chunk_override.h"
#include "ski/sinks.h"
#include "ski/skipper.h"
#include "util/error.h"

namespace jsonski::ski {

using path::PathQuery;
using path::PathStep;

MultiStreamer::MultiStreamer(std::vector<PathQuery> queries)
    : queries_(std::move(queries))
{
    for (const PathQuery& q : queries_) {
        if (q.hasDescendant())
            throw PathError(
                "multi-query streaming does not support '..'");
        if (q.hasFilter())
            throw PathError(
                "multi-query streaming does not support filters");
    }
    trie_.emplace_back(); // root
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
        int node = 0;
        for (const PathStep& step : queries_[qi].steps) {
            int next = -1;
            if (step.kind == PathStep::Kind::Key) {
                for (auto& [key, child] : trie_[node].key_children) {
                    if (key == step.key) {
                        next = child;
                        break;
                    }
                }
                if (next < 0) {
                    next = static_cast<int>(trie_.size());
                    trie_[node].key_children.emplace_back(step.key, next);
                    trie_.emplace_back();
                }
            } else {
                for (auto& [s, child] : trie_[node].array_children) {
                    if (s == step) {
                        next = child;
                        break;
                    }
                }
                if (next < 0) {
                    next = static_cast<int>(trie_.size());
                    trie_[node].array_children.emplace_back(step, next);
                    trie_.emplace_back();
                }
            }
            node = next;
        }
        trie_[node].accepts.push_back(qi);
    }
}

namespace {

using NodeSet = std::vector<int>;

} // namespace

/** One multi-query pass over a single record. */
class MultiDriver
{
  public:
    MultiDriver(const MultiStreamer& ms,
                const std::vector<MultiStreamer::Node>& trie,
                std::string_view json, MultiSink* sink,
                MultiStreamer::Result& result)
        : ms_(ms),
          trie_(trie),
          cur_(json),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result)
    {}

    MultiDriver(const MultiStreamer& ms,
                const std::vector<MultiStreamer::Node>& trie,
                intervals::ChunkSource& source, size_t chunk_bytes,
                MultiSink* sink, MultiStreamer::Result& result)
        : ms_(ms),
          trie_(trie),
          cur_(source, chunk_bytes),
          skip_(cur_, &result.stats),
          sink_(sink),
          result_(result)
    {}

    /** Record ingestion totals once the pass is over. */
    void
    finish()
    {
        result_.input_bytes = cur_.size();
        result_.ingest = cur_.ingestStats();
    }

    void
    run()
    {
        char c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::UnexpectedEnd, "empty input", 0);
        NodeSet root{0};
        runValue(root);
    }

  private:
    const MultiStreamer::Node& node(int i) const { return trie_[i]; }

    void
    emitTo(const NodeSet& active, size_t begin, size_t end)
    {
        telemetry::PhaseScope phase(telemetry::Phase::Emit);
        while (end > begin && json::isWhitespace(cur_.at(end - 1)))
            --end;
        for (int n : active) {
            for (size_t qi : node(n).accepts) {
                ++result_.matches[qi];
                if (sink_)
                    sink_->onMatch(qi, cur_.slice(begin, end));
            }
        }
    }

    bool
    anyAccept(const NodeSet& active) const
    {
        for (int n : active) {
            if (!node(n).accepts.empty())
                return true;
        }
        return false;
    }

    /** Process one value against the active node set. */
    void
    runValue(const NodeSet& active)
    {
        // Trace tag: representative trie node of the active set.
        skip_.setTraceState(static_cast<uint16_t>(active[0]));
        bool want_obj = false;
        bool want_ary = false;
        for (int n : active) {
            want_obj = want_obj || !node(n).key_children.empty();
            want_ary = want_ary || !node(n).array_children.empty();
        }
        bool accepts = anyAccept(active);

        char c = cur_.skipWhitespace();
        if (c == '\0')
            throw ParseError(ErrorCode::BadValue, "missing value", cur_.pos());
        size_t start = cur_.pos();
        size_t saved = intervals::StreamCursor::kNoHold;
        if (accepts) {
            // The value is reported whole once consumed: keep its span
            // resident across any chunk seams it straddles.
            saved = cur_.hold();
            cur_.setHold(std::min(saved, start));
        }
        if (c == '{' && want_obj) {
            cur_.advance(1);
            runObject(active);
        } else if (c == '[' && want_ary) {
            cur_.advance(1);
            runArray(active);
        } else {
            // Nothing deeper can match: fast-forward the whole value.
            skip_.overValue(accepts ? Group::G3 : Group::G2);
        }
        if (accepts) {
            emitTo(active, start, cur_.pos());
            cur_.setHold(saved);
        }
    }

    /** Count of distinct attribute names the active set can match. */
    size_t
    distinctKeyCount(const NodeSet& active)
    {
        if (active.size() == 1)
            return node(active[0]).key_children.size();
        scratch_keys_.clear();
        for (int n : active) {
            for (const auto& [key, child] : node(n).key_children) {
                if (std::find(scratch_keys_.begin(), scratch_keys_.end(),
                              key) == scratch_keys_.end()) {
                    scratch_keys_.push_back(key);
                }
            }
        }
        return scratch_keys_.size();
    }

    /** Entry: position just past '{'.  Exit: just past the '}'. */
    void
    runObject(const NodeSet& active)
    {
        size_t remaining = distinctKeyCount(active);

        // A shared type filter is sound only when every candidate
        // attribute needs the same container type.
        Skipper::TypeFilter filter = sharedFilter(active);

        NodeSet targets;
        targets.reserve(4);
        for (;;) {
            Skipper::AttrResult attr = skip_.toAttr(filter, Group::G1);
            if (!attr.found)
                return;
            std::string_view key =
                cur_.slice(attr.key_begin, attr.key_end);
            targets.clear();
            for (int n : active) {
                for (const auto& [k, child] : node(n).key_children) {
                    if (k == key)
                        targets.push_back(child);
                }
            }
            if (targets.empty()) {
                skip_.overValue(Group::G2);
                continue;
            }
            runValue(targets);
            skip_.setTraceState(static_cast<uint16_t>(active[0]));
            // Generalized G4: abandon the object once every candidate
            // name has been seen (names are unique per object).
            if (--remaining == 0) {
                skip_.toObjEnd(Group::G4);
                return;
            }
        }
    }

    /** Entry: position just past '['.  Exit: just past the ']'. */
    void
    runArray(const NodeSet& active)
    {
        // Local copy: recursion below may reuse the scratch space.
        std::vector<std::pair<const PathStep*, int>> steps;
        steps.reserve(4);
        for (int n : active) {
            for (const auto& [step, child] : node(n).array_children)
                steps.emplace_back(&step, child);
        }
        size_t lo_min = SIZE_MAX;
        size_t hi_max = 0;
        for (auto& [step, child] : steps) {
            lo_min = std::min(lo_min, step->lo);
            hi_max = std::max(hi_max, step->hi);
        }

        size_t idx = 0;
        char c = cur_.skipWhitespace();
        if (c == ']') {
            cur_.advance(1);
            return;
        }
        if (lo_min > 0 &&
            skip_.overElems(lo_min, idx, Group::G5) ==
                Skipper::ElemStop::End) {
            return;
        }
        NodeSet covering;
        for (;;) {
            if (idx >= hi_max) {
                skip_.toAryEnd(Group::G5);
                return;
            }
            c = cur_.skipWhitespace();
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            covering.clear();
            for (auto& [step, child] : steps) {
                if (step->coversIndex(idx))
                    covering.push_back(child);
            }
            if (covering.empty()) {
                skip_.overValue(Group::G5); // a gap between ranges
            } else {
                runValue(covering);
                skip_.setTraceState(static_cast<uint16_t>(active[0]));
            }
            c = cur_.skipWhitespace();
            if (c == ',') {
                cur_.advance(1);
                ++idx;
                continue;
            }
            if (c == ']') {
                cur_.advance(1);
                return;
            }
            throw ParseError(ErrorCode::ExpectedPunctuation,
                             "expected ',' or ']'", cur_.pos());
        }
    }

    /** Object filter usable for *all* candidate attributes, or Any. */
    Skipper::TypeFilter
    sharedFilter(const NodeSet& active) const
    {
        bool all_obj = true;
        bool all_ary = true;
        for (int n : active) {
            for (const auto& [key, child] : node(n).key_children) {
                const MultiStreamer::Node& t = node(child);
                bool obj_only = !t.key_children.empty() &&
                                t.array_children.empty() &&
                                t.accepts.empty();
                bool ary_only = t.key_children.empty() &&
                                !t.array_children.empty() &&
                                t.accepts.empty();
                all_obj = all_obj && obj_only;
                all_ary = all_ary && ary_only;
            }
        }
        if (all_obj)
            return Skipper::TypeFilter::Object;
        if (all_ary)
            return Skipper::TypeFilter::Array;
        return Skipper::TypeFilter::Any;
    }

    const MultiStreamer& ms_;
    const std::vector<MultiStreamer::Node>& trie_;
    std::vector<std::string_view> scratch_keys_;
    intervals::StreamCursor cur_;
    Skipper skip_;
    MultiSink* sink_;
    MultiStreamer::Result& result_;
};

MultiStreamer::Result
MultiStreamer::run(std::string_view json, MultiSink* sink) const
{
    if (size_t chunk = testChunkBytesOverride()) {
        intervals::ViewSource source(json);
        return run(source, sink, chunk);
    }
    Result result;
    result.matches.assign(queries_.size(), 0);
    MultiDriver driver(*this, trie_, json, sink, result);
    try {
        driver.run();
    } catch (const StopStreaming&) {
        // Early termination requested by the sink; partial result.
    }
    driver.finish();
    return result;
}

MultiStreamer::Result
MultiStreamer::run(intervals::ChunkSource& source, MultiSink* sink,
                   size_t chunk_bytes) const
{
    Result result;
    result.matches.assign(queries_.size(), 0);
    MultiDriver driver(*this, trie_, source, chunk_bytes, sink, result);
    try {
        driver.run();
    } catch (const StopStreaming&) {
    }
    driver.finish();
    return result;
}

} // namespace jsonski::ski
