#include "ski/parallel.h"

#include <atomic>
#include <optional>

#include "intervals/cursor.h"
#include "json/text.h"
#include "ski/skipper.h"
#include "ski/streamer.h"
#include "telemetry/telemetry.h"
#include "util/error.h"

namespace jsonski::ski {

using path::PathQuery;
using path::PathStep;

namespace {

/** Collects match spans (views into the shared input). */
class SpanSink : public path::MatchSink
{
  public:
    void
    onMatch(std::string_view value) override
    {
        values.push_back(value);
    }

    std::vector<std::string_view> values;
};

/**
 * Index of the array step to fan out over, or npos when the query has
 * no usable split: the serial phase-0 walk handles only a plain key
 * prefix, and the span splitter enumerates elements by *index* — so a
 * descendant step before the split or a filter step at it sends the
 * query down the serial fallback instead.
 */
size_t
firstArrayStep(const PathQuery& q)
{
    for (size_t i = 0; i < q.size(); ++i) {
        if (q[i].kind == PathStep::Kind::Filter)
            return std::string_view::npos;
        if (q[i].isArrayStep())
            return i;
        if (q[i].kind != PathStep::Kind::Key)
            return std::string_view::npos;
    }
    return std::string_view::npos;
}

} // namespace

bool
ParallelStreamer::parallelizable() const
{
    return firstArrayStep(query_) != std::string_view::npos;
}

size_t
ParallelStreamer::run(std::string_view json, ThreadPool& pool,
                      path::MatchSink* sink) const
{
    size_t split = firstArrayStep(query_);
    if (split == std::string_view::npos) {
        // No usable split (key-only query, descendant prefix, or a
        // filter at the split): evaluate serially.
        Streamer serial(query_);
        // runResident: the parallel entry point requires random access
        // to the (already materialized) buffer, so the chunked test
        // override must not apply to its internal passes.
        return serial.runResident(json, sink).matches;
    }

    // --- Phase 0 (serial): walk the key prefix to the split array. ---
    intervals::StreamCursor cur(json);
    Skipper skip(cur, nullptr);
    char c = cur.skipWhitespace();
    if (c == '\0')
        throw ParseError(ErrorCode::UnexpectedEnd, "empty input", 0);
    for (size_t s = 0; s < split; ++s) {
        if (c != '{')
            return 0; // type mismatch on the prefix: no matches
        cur.advance(1);
        const std::string& want = query_[s].key;
        bool found = false;
        for (;;) {
            Skipper::AttrResult attr =
                skip.toAttr(Skipper::TypeFilter::Any, Group::G1);
            if (!attr.found)
                break;
            if (cur.slice(attr.key_begin, attr.key_end) == want) {
                found = true;
                break;
            }
            skip.overValue(Group::G2);
        }
        if (!found)
            return 0;
        c = cur.skipWhitespace();
    }
    if (c != '[')
        return 0; // the value at the split position is not an array

    // --- Phase 1 (serial, bit-parallel): split element spans. ---
    const PathStep& astep = query_[split];
    PathQuery remaining;
    remaining.steps.assign(query_.steps.begin() +
                               static_cast<long>(split) + 1,
                           query_.steps.end());

    std::vector<std::pair<size_t, size_t>> spans;
    cur.advance(1);
    size_t idx = 0;
    c = cur.skipWhitespace();
    if (c != ']') {
        if (astep.lo > 0 &&
            skip.overElems(astep.lo, idx, Group::G5) ==
                Skipper::ElemStop::End) {
            idx = astep.hi; // array exhausted below the range
        }
        while (idx < astep.hi) {
            c = cur.skipWhitespace();
            if (c == ']')
                break;
            size_t begin = cur.pos();
            skip.overValue(Group::G1);
            size_t end = cur.pos();
            while (end > begin && json::isWhitespace(cur.at(end - 1)))
                --end;
            spans.emplace_back(begin, end);
            c = cur.skipWhitespace();
            if (c == ',') {
                cur.advance(1);
                ++idx;
                continue;
            }
            break; // ']' or end
        }
    }

    // --- Phase 2 (parallel): evaluate the tail query per element. ---
    std::vector<std::vector<std::string_view>> results(spans.size());
    if (remaining.empty()) {
        // The elements themselves are the matches; no work to fan out.
        for (size_t i = 0; i < spans.size(); ++i) {
            results[i].push_back(
                json.substr(spans[i].first,
                            spans[i].second - spans[i].first));
        }
    } else {
        // Cross-thread telemetry: each span records into its own
        // registry (worker threads do not inherit the caller's TLS
        // scope), merged below in span order so the result is
        // deterministic under the pool's dynamic scheduling.
        telemetry::Registry* parent = telemetry::current();
        std::vector<telemetry::Registry> span_regs(
            parent != nullptr ? spans.size() : 0);
        Streamer tail(remaining);
        pool.parallelFor(spans.size(), [&](size_t i) {
            std::optional<telemetry::Scope> scope;
            if (parent != nullptr)
                scope.emplace(span_regs[i]);
            std::string_view elem = json.substr(
                spans[i].first, spans[i].second - spans[i].first);
            // Primitive elements cannot satisfy further steps.
            char first = elem.empty() ? '\0' : elem.front();
            if (first != '{' && first != '[')
                return;
            SpanSink local;
            // runResident: SpanSink keeps views of `json` until the
            // document-order merge below.
            tail.runResident(elem, &local);
            results[i] = std::move(local.values);
        });
        for (const telemetry::Registry& r : span_regs)
            parent->merge(r);
    }

    // --- Merge in document order. ---
    size_t matches = 0;
    for (const auto& r : results) {
        matches += r.size();
        if (sink) {
            for (std::string_view v : r)
                sink->onMatch(v);
        }
    }
    return matches;
}

} // namespace jsonski::ski
