/**
 * @file
 * Multi-query streaming: evaluate several JSONPath expressions in one
 * pass over the data stream.
 *
 * The queries are compiled into a prefix trie; the driver walks the
 * stream once with a *set* of active trie nodes per level and
 * fast-forwards whatever no query cares about.  The G4 optimization
 * generalizes: an object is abandoned once every distinct attribute
 * name any active query could match has been seen.
 *
 * This extends the paper's single-query framework the way JPStream's
 * multi-query support motivates; all fast-forward machinery is reused
 * unchanged.
 */
#ifndef JSONSKI_SKI_MULTI_H
#define JSONSKI_SKI_MULTI_H

#include <cstddef>
#include <string_view>
#include <vector>

#include "intervals/chunk_source.h"
#include "intervals/cursor.h"
#include "path/ast.h"
#include "ski/stats.h"

namespace jsonski::ski {

/** Receiver for matches of a multi-query run. */
class MultiSink
{
  public:
    virtual ~MultiSink() = default;

    /**
     * Called once per match.
     * @param query_index index into the query vector the streamer was
     *        built with.
     * @param value       raw JSON text of the matched value; aliases
     *        the input buffer, valid only during the call.
     */
    virtual void onMatch(size_t query_index, std::string_view value) = 0;
};

/** Sink collecting matches per query. */
class MultiCollectSink : public MultiSink
{
  public:
    explicit MultiCollectSink(size_t queries) : values(queries) {}

    void
    onMatch(size_t query_index, std::string_view value) override
    {
        values[query_index].push_back(std::string(value));
    }

    std::vector<std::vector<std::string>> values;
};

/** See file comment. */
class MultiStreamer
{
  public:
    /** Compile @p queries into one trie. */
    explicit MultiStreamer(std::vector<path::PathQuery> queries);

    /** Outcome of one pass. */
    struct Result
    {
        /** Match count per query, same order as the constructor. */
        std::vector<size_t> matches;
        FastForwardStats stats;

        /** Bytes of the record ingested (== record size on success). */
        size_t input_bytes = 0;

        /** Chunked-ingestion accounting; zeros for whole-buffer runs. */
        intervals::StreamCursor::IngestStats ingest;
    };

    /** Default refill granularity for chunked runs (64 KiB). */
    static constexpr size_t kDefaultChunkBytes = size_t{1} << 16;

    /**
     * Evaluate all queries over one record in a single pass.
     * JSONSKI_TEST_CHUNK_BYTES=N reroutes through the chunked path
     * with N-byte chunks (see Streamer::run).
     */
    Result run(std::string_view json, MultiSink* sink = nullptr) const;

    /**
     * Single-pass evaluation over a record delivered by a ChunkSource;
     * resident memory is bounded by @p chunk_bytes plus the largest
     * matched value span (DESIGN.md §9).
     */
    Result run(intervals::ChunkSource& source, MultiSink* sink = nullptr,
               size_t chunk_bytes = kDefaultChunkBytes) const;

    /** The compiled queries. */
    const std::vector<path::PathQuery>& queries() const { return queries_; }

  private:
    friend class MultiDriver;

    /** One trie node; an edge per distinct next step. */
    struct Node
    {
        /** Child per distinct attribute name. */
        std::vector<std::pair<std::string, int>> key_children;

        /** Child per distinct array step (ranges may overlap). */
        std::vector<std::pair<path::PathStep, int>> array_children;

        /** Queries accepted at this node (value = match). */
        std::vector<size_t> accepts;
    };

    std::vector<path::PathQuery> queries_;
    std::vector<Node> trie_;
};

} // namespace jsonski::ski

#endif // JSONSKI_SKI_MULTI_H
