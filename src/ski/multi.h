/**
 * @file
 * Multi-query streaming: evaluate several JSONPath expressions in one
 * pass over the data stream (DESIGN.md §15).
 *
 * The query set is normalized (canonical forms, duplicates collapsed —
 * path/queryset.h) and the plain-step prefixes are compiled into a
 * prefix trie whose nodes carry per-level bitsets of the distinct
 * queries still live below them.  The driver walks the stream once
 * with a *set* of active trie nodes per level and fast-forwards
 * whatever no live query cares about: G2/G4/G5 skips fire only when
 * *no* live query can match below the skipped region.  The G4
 * optimization generalizes: an object is abandoned once every distinct
 * attribute name any active query could match has been seen.
 *
 * Queries with a filter or descendant step share the trie up to their
 * first such step; the divergent suffix is compiled into a per-query
 * single-query Streamer and replayed over the (held-resident) value
 * span at the divergence point, so the full query surface — filters,
 * descendants at any position — batches into the one pass.
 *
 * This extends the paper's single-query framework the way JPStream's
 * multi-query support motivates; all fast-forward machinery is reused
 * unchanged.
 */
#ifndef JSONSKI_SKI_MULTI_H
#define JSONSKI_SKI_MULTI_H

#include <cstddef>
#include <string_view>
#include <vector>

#include "intervals/chunk_source.h"
#include "intervals/cursor.h"
#include "path/ast.h"
#include "path/queryset.h"
#include "ski/stats.h"
#include "ski/streamer.h"

namespace jsonski::ski {

/** Receiver for matches of a multi-query run. */
class MultiSink
{
  public:
    virtual ~MultiSink() = default;

    /**
     * Called once per match.
     * @param query_index *distinct* query id (see
     *        MultiStreamer::querySet(): input positions map onto ids
     *        through QuerySet::id_of, so duplicate input queries share
     *        one match stream).
     * @param value       raw JSON text of the matched value; aliases
     *        the input buffer, valid only during the call.
     */
    virtual void onMatch(size_t query_index, std::string_view value) = 0;
};

/** Sink collecting matches per query. */
class MultiCollectSink : public MultiSink
{
  public:
    explicit MultiCollectSink(size_t queries) : values(queries) {}

    void
    onMatch(size_t query_index, std::string_view value) override
    {
        values[query_index].push_back(std::string(value));
    }

    std::vector<std::vector<std::string>> values;
};

/** See file comment. */
class MultiStreamer
{
  public:
    /**
     * Normalize @p queries (canonicalize, dedup) and compile the set
     * into one trie.  Duplicate inputs collapse: result/sink indices
     * are *distinct* ids (querySet().id_of maps input positions).
     */
    explicit MultiStreamer(std::vector<path::PathQuery> queries);

    /** Compile an already-normalized set. */
    explicit MultiStreamer(path::QuerySet set);

    /** Outcome of one pass. */
    struct Result
    {
        /** Match count per *distinct* query id. */
        std::vector<size_t> matches;

        /** Whole-pass totals (shared walk + every suffix replay). */
        FastForwardStats stats;

        /**
         * Fast-forward work attributable to one query alone: the
         * divergent-suffix replays of query id qi.  Zero for queries
         * answered entirely by the shared trie walk (their skips are
         * shared and live in `stats`).
         */
        std::vector<FastForwardStats> per_query;

        /** Bytes of the record ingested (== record size on success). */
        size_t input_bytes = 0;

        /** Chunked-ingestion accounting; zeros for whole-buffer runs. */
        intervals::StreamCursor::IngestStats ingest;
    };

    /** Default refill granularity for chunked runs (64 KiB). */
    static constexpr size_t kDefaultChunkBytes = size_t{1} << 16;

    /**
     * Evaluate all queries over one record in a single pass.
     * JSONSKI_TEST_CHUNK_BYTES=N reroutes through the chunked path
     * with N-byte chunks (see Streamer::run).
     */
    Result run(std::string_view json, MultiSink* sink = nullptr) const;

    /**
     * Single-pass evaluation over a record delivered by a ChunkSource;
     * resident memory is bounded by @p chunk_bytes plus the largest
     * span still held — for a query whose suffix diverges at depth d,
     * the entire value at its divergence point (DESIGN.md §15).
     */
    Result run(intervals::ChunkSource& source, MultiSink* sink = nullptr,
               size_t chunk_bytes = kDefaultChunkBytes) const;

    /** The normalized set (distinct queries, id map, canonical key). */
    const path::QuerySet& querySet() const { return set_; }

    /** The distinct compiled queries (first-occurrence order). */
    const std::vector<path::PathQuery>& queries() const
    {
        return set_.distinct;
    }

    /** Distinct query count (== result/sink index range). */
    size_t queryCount() const { return set_.size(); }

    /** Trie size; shared-prefix sets compile to fewer nodes. */
    size_t trieNodes() const { return trie_.size(); }

    /** Queries answered by divergent-suffix replay (see file cmt). */
    size_t suffixCount() const { return suffixes_.size(); }

  private:
    friend class MultiDriver;

    /** A query's divergent tail: replayed by a single-query engine. */
    struct Suffix
    {
        size_t qi;         ///< distinct query id it reports as
        Streamer streamer; ///< compiled `$<first filter/desc step>...`
    };

    /** One trie node; an edge per distinct next plain step. */
    struct Node
    {
        /** Child per distinct attribute name. */
        std::vector<std::pair<std::string, int>> key_children;

        /** Child per distinct array step (ranges may overlap). */
        std::vector<std::pair<path::PathStep, int>> array_children;

        /** Distinct query ids accepted at this node (value = match). */
        std::vector<size_t> accepts;

        /** Indices into suffixes_ replayed over this node's value. */
        std::vector<size_t> suffixes;

        /** Per-level live bitset: ids whose path traverses this node. */
        path::QueryBits live;

        /**
         * Type summary for the G1 typed scan: every interest below
         * this node is an object attribute / an array element.
         * Computed once at compile time; sharedFilter() ANDs these
         * across the candidate children of an active set.
         */
        bool obj_only = false;
        bool ary_only = false;
    };

    void build();

    path::QuerySet set_;
    std::vector<Node> trie_;
    std::vector<Suffix> suffixes_;
};

} // namespace jsonski::ski

#endif // JSONSKI_SKI_MULTI_H
