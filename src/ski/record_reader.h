/**
 * @file
 * Incremental record reader: stream a sequence of JSON records from an
 * std::istream through a fixed-size buffer, without ever materializing
 * the whole input.  This realizes the paper's memory claim for the
 * streaming scheme — "memory consumption is configurable by adjusting
 * the input buffer size" (§5.2) — for the small-records scenario.
 *
 * Records are delimited with the bit-parallel record scanner; a record
 * must fit in the buffer (the reader grows it once if a single record
 * exceeds the configured size, so progress is always possible).
 */
#ifndef JSONSKI_SKI_RECORD_READER_H
#define JSONSKI_SKI_RECORD_READER_H

#include <cstddef>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "intervals/chunk_source.h"

namespace jsonski::ski {

/** See file comment. */
class RecordReader
{
  public:
    /**
     * @param in          Source stream (must outlive the reader).
     * @param buffer_size Working buffer capacity in bytes.
     */
    explicit RecordReader(std::istream& in, size_t buffer_size = 1 << 20);

    /**
     * Read records from any ChunkSource (must outlive the reader);
     * @p buffer_size doubles as the refill granularity.
     */
    explicit RecordReader(intervals::ChunkSource& source,
                          size_t buffer_size = 1 << 20);

    /**
     * Fetch the next record.
     *
     * @param record Out: view of the record text.  Valid until the
     *               next call to next() (the buffer may be refilled).
     * @return false at end of input.
     * @throws jsonski::ParseError on malformed stream content.
     */
    bool next(std::string_view& record);

    /** Records delivered so far. */
    size_t recordsRead() const { return records_read_; }

    /** Total record bytes delivered so far. */
    size_t bytesRead() const { return bytes_read_; }

    /** Current buffer capacity (grows only for oversized records). */
    size_t bufferSize() const { return buffer_.size(); }

  private:
    /** Slide leftover bytes to the front and refill from the stream. */
    void refill();

    std::optional<intervals::IstreamSource> owned_; ///< istream adapter
    intervals::ChunkSource* src_;
    std::vector<char> buffer_;
    size_t begin_ = 0; ///< first unconsumed byte
    size_t end_ = 0;   ///< one past the last valid byte
    bool eof_ = false;
    size_t records_read_ = 0;
    size_t bytes_read_ = 0;

    /** Spans of records already located in the current buffer fill. */
    std::vector<std::pair<size_t, size_t>> pending_;
    size_t pending_next_ = 0;
};

} // namespace jsonski::ski

#endif // JSONSKI_SKI_RECORD_READER_H
