/**
 * @file
 * Test hook shared by the streaming entry points: setting
 * JSONSKI_TEST_CHUNK_BYTES=N in the environment reroutes every
 * whole-buffer run (Streamer, MultiStreamer) through the chunked
 * ingestion path with N-byte chunks.  The CI seam leg runs the whole
 * test suite this way under ASan+UBSan, so every existing test doubles
 * as a chunk-seam test without knowing it.
 */
#ifndef JSONSKI_SKI_CHUNK_OVERRIDE_H
#define JSONSKI_SKI_CHUNK_OVERRIDE_H

#include <cstddef>
#include <cstdlib>

namespace jsonski::ski {

/** Chunk size from JSONSKI_TEST_CHUNK_BYTES, or 0 when unset. */
inline size_t
testChunkBytesOverride()
{
    static const size_t v = [] {
        const char* e = std::getenv("JSONSKI_TEST_CHUNK_BYTES");
        if (e == nullptr || *e == '\0')
            return size_t{0};
        return static_cast<size_t>(std::strtoull(e, nullptr, 10));
    }();
    return v;
}

} // namespace jsonski::ski

#endif // JSONSKI_SKI_CHUNK_OVERRIDE_H
