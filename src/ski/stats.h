/**
 * @file
 * Fast-forward accounting (paper §5.3, Table 6).
 *
 * Every fast-forward primitive attributes the number of characters it
 * skipped to one of the five groups of Table 1.  The *fast-forward
 * ratio* of a run is skipped / input-length per group; the paper
 * reports these ratios per query to show where the skipping comes from.
 */
#ifndef JSONSKI_SKI_STATS_H
#define JSONSKI_SKI_STATS_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

namespace jsonski::ski {

/** The five fast-forward groups of Table 1. */
enum class Group : uint8_t {
    G1, ///< fast-forward to a type-specific attribute / element
    G2, ///< fast-forward over an unmatched attribute value
    G3, ///< fast-forward over a matched value while outputting it
    G4, ///< fast-forward to the end of the current object after a match
    G5, ///< fast-forward over out-of-range array elements
};

/** Number of groups. */
inline constexpr size_t kGroupCount = 5;

/** Characters fast-forwarded, per group. */
struct FastForwardStats
{
    std::array<uint64_t, kGroupCount> skipped{};

    void
    add(Group g, uint64_t chars)
    {
        skipped[static_cast<size_t>(g)] += chars;
    }

    uint64_t
    get(Group g) const
    {
        return skipped[static_cast<size_t>(g)];
    }

    /** Characters skipped across all groups. */
    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t v : skipped)
            t += v;
        return t;
    }

    /**
     * Per-group ratio against an input of @p input_len bytes.
     *
     * Denominator contract: @p input_len must be the total number of
     * bytes the engine was handed, including any bytes *outside* the
     * records it parsed.  Record-stream runs that pass only the sum of
     * record payloads undercount the denominator (newline delimiters,
     * and stats accumulated across repeated runs over the same buffer)
     * and the raw quotient can exceed 1.0; since a ratio above 1 is
     * meaningless ("skipped more bytes than exist"), the result is
     * clamped to [0, 1].  Callers that repeat runs must divide by
     * repeats or reset the stats between runs.
     */
    double
    ratio(Group g, size_t input_len) const
    {
        return input_len == 0
                   ? 0.0
                   : std::min(1.0, static_cast<double>(get(g)) /
                                       static_cast<double>(input_len));
    }

    /** Overall fast-forward ratio; same denominator contract (and
     *  clamp) as ratio(). */
    double
    overallRatio(size_t input_len) const
    {
        return input_len == 0
                   ? 0.0
                   : std::min(1.0, static_cast<double>(total()) /
                                       static_cast<double>(input_len));
    }

    void
    merge(const FastForwardStats& other)
    {
        for (size_t i = 0; i < kGroupCount; ++i)
            skipped[i] += other.skipped[i];
    }
};

} // namespace jsonski::ski

#endif // JSONSKI_SKI_STATS_H
