#include "path/queryset.h"

#include <algorithm>

#include "path/parser.h"
#include "util/error.h"

namespace jsonski::path {

std::vector<std::string>
QuerySet::sortedCanonical() const
{
    std::vector<std::string> texts = canonical;
    std::sort(texts.begin(), texts.end());
    return texts;
}

std::string
QuerySet::key() const
{
    std::string out;
    for (const std::string& text : sortedCanonical()) {
        if (!out.empty())
            out += ',';
        out += text;
    }
    return out;
}

std::vector<size_t>
QuerySet::mapOnto(const std::vector<std::string>& plan_texts) const
{
    std::vector<size_t> out;
    out.reserve(id_of.size());
    for (size_t pos = 0; pos < id_of.size(); ++pos) {
        const std::string& text = canonical[id_of[pos]];
        auto it =
            std::find(plan_texts.begin(), plan_texts.end(), text);
        if (it == plan_texts.end())
            throw PathError("query '" + text +
                            "' is not part of the compiled plan");
        out.push_back(
            static_cast<size_t>(it - plan_texts.begin()));
    }
    return out;
}

std::vector<size_t>
QuerySet::representatives() const
{
    std::vector<size_t> rep(distinct.size(), SIZE_MAX);
    for (size_t pos = 0; pos < id_of.size(); ++pos) {
        if (rep[id_of[pos]] == SIZE_MAX)
            rep[id_of[pos]] = pos;
    }
    return rep;
}

QuerySet
QuerySet::normalize(std::vector<PathQuery> queries)
{
    QuerySet set;
    set.id_of.reserve(queries.size());
    for (PathQuery& q : queries) {
        std::string text = q.toString();
        size_t id = SIZE_MAX;
        for (size_t d = 0; d < set.canonical.size(); ++d) {
            if (set.canonical[d] == text) {
                id = d;
                break;
            }
        }
        if (id == SIZE_MAX) {
            id = set.distinct.size();
            set.distinct.push_back(std::move(q));
            set.canonical.push_back(std::move(text));
        }
        set.id_of.push_back(id);
    }
    return set;
}

QuerySet
QuerySet::fromTexts(const std::vector<std::string>& texts)
{
    std::vector<PathQuery> queries;
    queries.reserve(texts.size());
    for (const std::string& text : texts)
        queries.push_back(parse(text));
    return normalize(std::move(queries));
}

} // namespace jsonski::path
