#include "path/filter.h"

#include <cassert>

#include "json/number.h"
#include "json/text.h"
#include "util/error.h"

namespace jsonski::path {
namespace {

/** Three-way-ish comparison outcome for ordered operators. */
enum class Ordering { Less, Equal, Greater, Incomparable };

Ordering
compareRaw(std::string_view raw, const FilterLiteral& lit)
{
    if (raw.empty())
        return Ordering::Incomparable;
    char c = raw.front();
    switch (lit.kind) {
      case FilterLiteral::Kind::Null:
        return raw == "null" ? Ordering::Equal : Ordering::Incomparable;
      case FilterLiteral::Kind::Bool: {
        bool value;
        if (raw == "true")
            value = true;
        else if (raw == "false")
            value = false;
        else
            return Ordering::Incomparable;
        return value == lit.b ? Ordering::Equal : Ordering::Incomparable;
      }
      case FilterLiteral::Kind::Number: {
        if (c == '"' || c == '{' || c == '[' || c == 't' || c == 'f' ||
            c == 'n')
            return Ordering::Incomparable;
        json::Number n = json::parseNumber(raw);
        if (!n)
            return Ordering::Incomparable;
        double v = n.asDouble();
        if (v < lit.num)
            return Ordering::Less;
        if (v > lit.num)
            return Ordering::Greater;
        return Ordering::Equal;
      }
      case FilterLiteral::Kind::String: {
        if (c != '"' || raw.size() < 2)
            return Ordering::Incomparable;
        std::string_view body = raw.substr(1, raw.size() - 2);
        // Decode only when escapes are present: "aA" and "aA"
        // must compare equal, but the common case stays copy-free.
        if (body.find('\\') == std::string_view::npos) {
            int cmp = body.compare(lit.str);
            return cmp < 0   ? Ordering::Less
                   : cmp > 0 ? Ordering::Greater
                             : Ordering::Equal;
        }
        try {
            std::string decoded = json::unescapeString(body);
            int cmp = decoded.compare(lit.str);
            return cmp < 0   ? Ordering::Less
                   : cmp > 0 ? Ordering::Greater
                             : Ordering::Equal;
        } catch (const ParseError&) {
            // A malformed escape the lazy engines never validate:
            // keep the predicate total so both engines agree.
            return Ordering::Incomparable;
        }
      }
    }
    return Ordering::Incomparable;
}

} // namespace

bool
evalPredicate(const PathStep& step, bool present,
              std::string_view raw_value)
{
    assert(step.kind == PathStep::Kind::Filter);
    if (step.op == FilterOp::Exists)
        return present;
    if (!present)
        return false; // a missing field satisfies no operator
    Ordering ord = compareRaw(raw_value, step.literal);
    switch (step.op) {
      case FilterOp::Exists: return true; // unreachable; handled above
      case FilterOp::Eq: return ord == Ordering::Equal;
      case FilterOp::Ne: return ord != Ordering::Equal;
      case FilterOp::Lt: return ord == Ordering::Less;
      case FilterOp::Le:
        return ord == Ordering::Less || ord == Ordering::Equal;
      case FilterOp::Gt: return ord == Ordering::Greater;
      case FilterOp::Ge:
        return ord == Ordering::Greater || ord == Ordering::Equal;
    }
    return false;
}

} // namespace jsonski::path
