/**
 * @file
 * Filter-predicate semantics shared by every engine (DESIGN.md §13).
 *
 * A filter `[?(@.field op literal)]` applies to the elements of an
 * array; `@.field` requires the element to be an object.  The verdict
 * is computed from the *raw lexeme* of the field's value — exactly the
 * bytes between structural characters, which is what both the
 * streaming engine (it never tokenizes the candidate) and the DOM
 * baseline (Node::text keeps raw text) can hand over — so the two
 * engines share one comparison function and the differential oracle
 * stays byte-exact.
 *
 * Pinned semantics:
 *  - Existence (`[?(@.f)]`) is true for any present value, including
 *    null, false, and containers.
 *  - `==` holds only between scalars of the same kind with equal
 *    values: numbers compare as double (1 == 1.0), strings compare on
 *    their decoded bytes, true/false/null compare to themselves.  A
 *    container operand is never equal to a literal.
 *  - `!=` is present-and-not-equal (a missing field satisfies no
 *    operator, `!=` included; a container or cross-type operand does).
 *  - `<' `<=` `>` `>=` require number-vs-number or string-vs-string
 *    (lexicographic on decoded bytes); anything else is false.
 */
#ifndef JSONSKI_PATH_FILTER_H
#define JSONSKI_PATH_FILTER_H

#include <string_view>

#include "path/ast.h"

namespace jsonski::path {

/**
 * Evaluate the predicate of filter step @p step.
 *
 * @param present   Whether the element has the predicate field at all.
 * @param raw_value Raw lexeme of the field's value when present:
 *                  strings include their quotes, numbers/true/false/
 *                  null are the bare token (surrounding whitespace
 *                  trimmed).  For container values only the opening
 *                  '{' or '[' byte is required — comparisons never
 *                  look past the first byte of a container.
 * Total: never throws.  A string operand whose escapes are malformed
 * (a document the validator would reject, which the lazy engines may
 * never notice) compares as Incomparable rather than erroring, so the
 * predicate can introduce no engine-divergent failure path.
 */
bool evalPredicate(const PathStep& step, bool present,
                   std::string_view raw_value);

} // namespace jsonski::path

#endif // JSONSKI_PATH_FILTER_H
