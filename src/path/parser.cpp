#include "path/parser.h"

#include <cctype>
#include <charconv>

#include "util/error.h"

namespace jsonski::path {
namespace {

/** Hand-written scanner for the small JSONPath dialect. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : s_(text) {}

    PathQuery
    run()
    {
        if (s_.empty() || s_[0] != '$')
            throw PathError("expression must start with '$'");
        pos_ = 1;
        PathQuery q;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '.') {
                if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '.') {
                    pos_ += 2;
                    q.steps.push_back(
                        PathStep::makeDescendant(identifier()));
                    if (pos_ != s_.size())
                        throw PathError("the descendant operator '..' is "
                                        "only supported as the final "
                                        "step");
                    return q;
                }
                ++pos_;
                q.steps.push_back(PathStep::makeKey(identifier()));
            } else if (c == '[') {
                ++pos_;
                q.steps.push_back(bracketStep());
            } else {
                throw PathError(std::string("unexpected character '") + c +
                                "'");
            }
        }
        return q;
    }

  private:
    std::string
    identifier()
    {
        size_t start = pos_;
        while (pos_ < s_.size() && s_[pos_] != '.' && s_[pos_] != '[')
            ++pos_;
        if (pos_ == start)
            throw PathError("empty attribute name");
        return std::string(s_.substr(start, pos_ - start));
    }

    size_t
    integer()
    {
        size_t value = 0;
        auto [end, ec] =
            std::from_chars(s_.data() + pos_, s_.data() + s_.size(), value);
        if (ec != std::errc{} || end == s_.data() + pos_)
            throw PathError("expected an array index");
        pos_ = static_cast<size_t>(end - s_.data());
        return value;
    }

    PathStep
    bracketStep()
    {
        if (pos_ >= s_.size())
            throw PathError("unterminated '['");
        char c = s_[pos_];
        if (c == '*') {
            ++pos_;
            expect(']');
            return PathStep::makeWildcard();
        }
        if (c == '\'' || c == '"') {
            // Quoted child name: ['name'].
            char quote = c;
            ++pos_;
            size_t start = pos_;
            while (pos_ < s_.size() && s_[pos_] != quote)
                ++pos_;
            if (pos_ >= s_.size())
                throw PathError("unterminated quoted name");
            std::string name(s_.substr(start, pos_ - start));
            ++pos_;
            expect(']');
            return PathStep::makeKey(std::move(name));
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t lo = integer();
            if (pos_ < s_.size() && s_[pos_] == ':') {
                ++pos_;
                size_t hi = integer();
                if (hi <= lo)
                    throw PathError("empty index range");
                expect(']');
                return PathStep::makeSlice(lo, hi);
            }
            expect(']');
            return PathStep::makeIndex(lo);
        }
        throw PathError("unsupported bracket expression");
    }

    void
    expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            throw PathError(std::string("expected '") + c + "'");
        ++pos_;
    }

    std::string_view s_;
    size_t pos_ = 0;
};

} // namespace

PathQuery
parse(std::string_view text)
{
    return Parser(text).run();
}

std::string
PathQuery::toString() const
{
    std::string out = "$";
    for (const PathStep& s : steps) {
        switch (s.kind) {
          case PathStep::Kind::Key:
            out += '.';
            out += s.key;
            break;
          case PathStep::Kind::Index:
            out += '[' + std::to_string(s.lo) + ']';
            break;
          case PathStep::Kind::Slice:
            out += '[' + std::to_string(s.lo) + ':' +
                   std::to_string(s.hi) + ']';
            break;
          case PathStep::Kind::Wildcard:
            out += "[*]";
            break;
          case PathStep::Kind::Descendant:
            out += "..";
            out += s.key;
            break;
        }
    }
    return out;
}

} // namespace jsonski::path
