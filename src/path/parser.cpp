#include "path/parser.h"

#include <cctype>
#include <charconv>

#include "json/number.h"
#include "util/error.h"

namespace jsonski::path {
namespace {

bool
isFilterWs(char c)
{
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/**
 * Hand-written scanner for the JSONPath dialect (ast.h file comment).
 * Every rejection throws PathError carrying the byte offset of the
 * offending character, so callers (and the grammar fuzzer) can assert
 * on *where* a query broke, not just that it broke.
 */
class Parser
{
  public:
    explicit Parser(std::string_view text) : s_(text) {}

    PathQuery
    run()
    {
        if (s_.empty() || s_[0] != '$')
            throw PathError("expression must start with '$'", 0);
        pos_ = 1;
        PathQuery q;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '.') {
                if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '.') {
                    pos_ += 2;
                    q.steps.push_back(
                        PathStep::makeDescendant(descendantName()));
                } else {
                    ++pos_;
                    q.steps.push_back(PathStep::makeKey(identifier()));
                }
            } else if (c == '[') {
                ++pos_;
                q.steps.push_back(bracketStep());
            } else {
                throw PathError(std::string("unexpected character '") + c +
                                    "'",
                                pos_);
            }
        }
        return q;
    }

  private:
    std::string
    identifier()
    {
        size_t start = pos_;
        while (pos_ < s_.size() && s_[pos_] != '.' && s_[pos_] != '[')
            ++pos_;
        if (pos_ == start)
            throw PathError("empty attribute name", start);
        return std::string(s_.substr(start, pos_ - start));
    }

    /** Name after `..`: a bare identifier or the `..['name']` form. */
    std::string
    descendantName()
    {
        if (pos_ < s_.size() && s_[pos_] == '[') {
            ++pos_;
            if (pos_ >= s_.size() ||
                (s_[pos_] != '\'' && s_[pos_] != '"'))
                throw PathError("expected a quoted name after \"..[\"",
                                pos_);
            std::string name = quoted("quoted name");
            expect(']');
            return name;
        }
        return identifier();
    }

    /**
     * Quoted string starting at the current position (which must be a
     * quote character).  Supports the escapes \\ \' \" \/ \n \t \r \b
     * \f; every other byte is taken raw.  @p what names the construct
     * in error messages ("quoted name" / "string literal").
     */
    std::string
    quoted(const char* what)
    {
        char quote = s_[pos_];
        size_t open = pos_;
        ++pos_;
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != quote) {
            char c = s_[pos_];
            if (c == '\\') {
                if (pos_ + 1 >= s_.size())
                    break; // dangling backslash: unterminated below
                char e = s_[pos_ + 1];
                switch (e) {
                  case '\\': out += '\\'; break;
                  case '\'': out += '\''; break;
                  case '"': out += '"'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  default:
                    throw PathError(std::string("unknown escape in ") +
                                        what,
                                    pos_ + 1);
                }
                pos_ += 2;
            } else {
                out += c;
                ++pos_;
            }
        }
        if (pos_ >= s_.size())
            throw PathError(std::string("unterminated ") + what, open);
        ++pos_; // closing quote
        return out;
    }

    size_t
    integer()
    {
        size_t value = 0;
        auto [end, ec] =
            std::from_chars(s_.data() + pos_, s_.data() + s_.size(), value);
        if (ec != std::errc{} || end == s_.data() + pos_)
            throw PathError("expected an array index", pos_);
        pos_ = static_cast<size_t>(end - s_.data());
        return value;
    }

    PathStep
    bracketStep()
    {
        if (pos_ >= s_.size())
            throw PathError("unterminated '['", pos_);
        char c = s_[pos_];
        if (c == '*') {
            ++pos_;
            expect(']');
            return PathStep::makeWildcard();
        }
        if (c == '?')
            return filterStep();
        if (c == '\'' || c == '"') {
            // Quoted child name: ['name'].
            std::string name = quoted("quoted name");
            expect(']');
            return PathStep::makeKey(std::move(name));
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t lo = integer();
            if (pos_ < s_.size() && s_[pos_] == ':') {
                ++pos_;
                size_t hi = integer();
                if (hi <= lo)
                    throw PathError("empty index range", pos_);
                expect(']');
                return PathStep::makeSlice(lo, hi);
            }
            expect(']');
            return PathStep::makeIndex(lo);
        }
        throw PathError("unsupported bracket expression", pos_);
    }

    void
    skipFilterWs()
    {
        while (pos_ < s_.size() && isFilterWs(s_[pos_]))
            ++pos_;
    }

    /** `?(@.field)` / `?(@.field op literal)`; entry: at the '?'. */
    PathStep
    filterStep()
    {
        ++pos_; // '?'
        expect('(');
        skipFilterWs();
        if (pos_ >= s_.size() || s_[pos_] != '@')
            throw PathError("filter predicate must start with '@'", pos_);
        ++pos_;
        std::string field;
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            field = filterField();
        } else if (pos_ < s_.size() && s_[pos_] == '[') {
            ++pos_;
            if (pos_ >= s_.size() ||
                (s_[pos_] != '\'' && s_[pos_] != '"'))
                throw PathError("expected a quoted field after \"@[\"",
                                pos_);
            field = quoted("quoted name");
            expect(']');
        } else {
            throw PathError("expected '.' or '[' after '@'", pos_);
        }
        skipFilterWs();
        if (pos_ < s_.size() && s_[pos_] == ')') {
            ++pos_;
            expect(']');
            return PathStep::makeFilter(std::move(field),
                                        FilterOp::Exists,
                                        FilterLiteral::makeNull());
        }
        FilterOp op = filterOp();
        skipFilterWs();
        FilterLiteral lit = filterLiteral();
        skipFilterWs();
        if (pos_ >= s_.size() || s_[pos_] != ')')
            throw PathError("expected ')' after the filter literal",
                            pos_);
        ++pos_;
        expect(']');
        return PathStep::makeFilter(std::move(field), op,
                                    std::move(lit));
    }

    /** Bare predicate field name after `@.`. */
    std::string
    filterField()
    {
        size_t start = pos_;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (isFilterWs(c) || c == ')' || c == ']' || c == '=' ||
                c == '!' || c == '<' || c == '>')
                break;
            ++pos_;
        }
        if (pos_ == start)
            throw PathError("expected a predicate field", start);
        return std::string(s_.substr(start, pos_ - start));
    }

    FilterOp
    filterOp()
    {
        if (pos_ >= s_.size())
            throw PathError("expected a comparison operator or ')'",
                            pos_);
        char c = s_[pos_];
        switch (c) {
          case '=':
            if (pos_ + 1 >= s_.size() || s_[pos_ + 1] != '=')
                throw PathError("expected '==' (single '=' is not an "
                                "operator)",
                                pos_);
            pos_ += 2;
            return FilterOp::Eq;
          case '!':
            if (pos_ + 1 >= s_.size() || s_[pos_ + 1] != '=')
                throw PathError("expected '!='", pos_);
            pos_ += 2;
            return FilterOp::Ne;
          case '<':
            if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
                pos_ += 2;
                return FilterOp::Le;
            }
            ++pos_;
            return FilterOp::Lt;
          case '>':
            if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
                pos_ += 2;
                return FilterOp::Ge;
            }
            ++pos_;
            return FilterOp::Gt;
          default:
            throw PathError("expected a comparison operator or ')'",
                            pos_);
        }
    }

    FilterLiteral
    filterLiteral()
    {
        if (pos_ >= s_.size())
            throw PathError("expected a filter literal", pos_);
        char c = s_[pos_];
        if (c == '\'' || c == '"')
            return FilterLiteral::makeString(quoted("string literal"));
        size_t start = pos_;
        while (pos_ < s_.size()) {
            char t = s_[pos_];
            if (isFilterWs(t) || t == ')' || t == ']' || t == '=' ||
                t == '!' || t == '<' || t == '>')
                break;
            ++pos_;
        }
        std::string_view tok = s_.substr(start, pos_ - start);
        if (tok == "true")
            return FilterLiteral::makeBool(true);
        if (tok == "false")
            return FilterLiteral::makeBool(false);
        if (tok == "null")
            return FilterLiteral::makeNull();
        json::Number n = json::parseNumber(tok);
        if (!n)
            throw PathError("bad filter literal", start);
        return FilterLiteral::makeNumber(n.asDouble());
    }

    void
    expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            throw PathError(std::string("expected '") + c + "'", pos_);
        ++pos_;
    }

    std::string_view s_;
    size_t pos_ = 0;
};

/** Keys printable in dotted form (subset of what identifier() reads). */
bool
isPlainKey(const std::string& key)
{
    if (key.empty())
        return false;
    for (char c : key) {
        bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                  c == '_' || c == '$' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

/** `'...'` with the escapes quoted() understands re-applied. */
std::string
quoteName(const std::string& key)
{
    std::string out = "'";
    for (char c : key) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\'': out += "\\'"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default: out += c; break;
        }
    }
    out += '\'';
    return out;
}

/** Shortest round-trip decimal form of a filter number literal. */
std::string
numberToString(double v)
{
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    return std::string(buf, end);
}

const char*
opToString(FilterOp op)
{
    switch (op) {
      case FilterOp::Exists: return "";
      case FilterOp::Eq: return "==";
      case FilterOp::Ne: return "!=";
      case FilterOp::Lt: return "<";
      case FilterOp::Le: return "<=";
      case FilterOp::Gt: return ">";
      case FilterOp::Ge: return ">=";
    }
    return "";
}

std::string
literalToString(const FilterLiteral& lit)
{
    switch (lit.kind) {
      case FilterLiteral::Kind::Null: return "null";
      case FilterLiteral::Kind::Bool: return lit.b ? "true" : "false";
      case FilterLiteral::Kind::Number: return numberToString(lit.num);
      case FilterLiteral::Kind::String: return quoteName(lit.str);
    }
    return "null";
}

} // namespace

PathQuery
parse(std::string_view text)
{
    return Parser(text).run();
}

std::string
PathQuery::toString() const
{
    std::string out = "$";
    for (const PathStep& s : steps) {
        switch (s.kind) {
          case PathStep::Kind::Key:
            if (isPlainKey(s.key)) {
                out += '.';
                out += s.key;
            } else {
                out += '[' + quoteName(s.key) + ']';
            }
            break;
          case PathStep::Kind::Index:
            out += '[' + std::to_string(s.lo) + ']';
            break;
          case PathStep::Kind::Slice:
            out += '[' + std::to_string(s.lo) + ':' +
                   std::to_string(s.hi) + ']';
            break;
          case PathStep::Kind::Wildcard:
            out += "[*]";
            break;
          case PathStep::Kind::Descendant:
            out += "..";
            if (isPlainKey(s.key))
                out += s.key;
            else
                out += '[' + quoteName(s.key) + ']';
            break;
          case PathStep::Kind::Filter:
            out += "[?(@";
            if (isPlainKey(s.key)) {
                out += '.';
                out += s.key;
            } else {
                out += '[' + quoteName(s.key) + ']';
            }
            if (s.op != FilterOp::Exists) {
                out += opToString(s.op);
                out += literalToString(s.literal);
            }
            out += ")]";
            break;
        }
    }
    return out;
}

} // namespace jsonski::path
