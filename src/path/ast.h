/**
 * @file
 * JSONPath abstract syntax shared by every engine.
 *
 * The supported dialect matches the paper (§5.1): root `$`, child
 * (`.name` / `['name']`), array index `[n]`, index range `[m:n]`
 * (half-open, so `[2:4]` selects the 3rd and 4th elements), and the
 * array wildcard `[*]`.  Going beyond the paper's implementation (it
 * names `..` as future work), the descendant operator `..name` is
 * supported at *any* step position (`$..a[2].b`, `$..a..b`): it
 * selects every attribute called `name` at any depth under the
 * current value, and the remaining steps continue from each such
 * value.  Filter predicates `[?(@.field op literal)]` select the
 * object elements of an array whose attribute `field` satisfies the
 * predicate (ops ==, !=, <, <=, >, >=, plus bare `[?(@.field)]`
 * existence); see filter.h for the comparison semantics.
 *
 * Evaluation semantics for the combined surface (DESIGN.md §13): a
 * query denotes a nondeterministic automaton over path steps; a value
 * is emitted once per accepting automaton path (so `$..a..b` can
 * report one value several times), and results are produced in
 * document pre-order — a value is reported before any matches nested
 * inside it, duplicates consecutively.
 */
#ifndef JSONSKI_PATH_AST_H
#define JSONSKI_PATH_AST_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace jsonski::path {

/** The JSON container type a path step can only apply to. */
enum class ExpectedType : uint8_t {
    Object, ///< next step is a key: the value must be an object
    Array,  ///< next step is an index/slice/wildcard: must be an array
    Any,    ///< no next step: the value is the output, any type
};

/** Comparison operator of a filter predicate. */
enum class FilterOp : uint8_t {
    Exists, ///< `[?(@.f)]` — the attribute is present (any value)
    Eq,     ///< ==
    Ne,     ///< !=
    Lt,     ///< <
    Le,     ///< <=
    Gt,     ///< >
    Ge,     ///< >=
};

/** Literal operand of a filter comparison. */
struct FilterLiteral
{
    enum class Kind : uint8_t { Null, Bool, Number, String };

    Kind kind = Kind::Null;
    bool b = false;    ///< Kind::Bool
    double num = 0;    ///< Kind::Number
    std::string str;   ///< Kind::String (escapes decoded)

    static FilterLiteral
    makeNull()
    {
        return FilterLiteral{};
    }

    static FilterLiteral
    makeBool(bool v)
    {
        FilterLiteral l;
        l.kind = Kind::Bool;
        l.b = v;
        return l;
    }

    static FilterLiteral
    makeNumber(double v)
    {
        FilterLiteral l;
        l.kind = Kind::Number;
        l.num = v;
        return l;
    }

    static FilterLiteral
    makeString(std::string v)
    {
        FilterLiteral l;
        l.kind = Kind::String;
        l.str = std::move(v);
        return l;
    }

    bool operator==(const FilterLiteral&) const = default;
};

/** One step of a path expression. */
struct PathStep
{
    enum class Kind : uint8_t {
        Key,        ///< `.name` — match an object attribute name
        Index,      ///< `[n]` — match exactly one array position
        Slice,      ///< `[m:n]` — match array positions in [m, n)
        Wildcard,   ///< `[*]` — match every array position
        Descendant, ///< `..name` — match the attribute at any depth
        Filter,     ///< `[?(@.f op lit)]` — predicate on array elements
    };

    Kind kind = Kind::Key;
    std::string key;   ///< attribute name (Key/Descendant/Filter field)
    size_t lo = 0;     ///< first index (Index/Slice)
    size_t hi = 0;     ///< one past last index (Index/Slice)
    FilterOp op = FilterOp::Exists; ///< Kind::Filter only
    FilterLiteral literal;          ///< Kind::Filter comparison operand

    static PathStep
    makeKey(std::string name)
    {
        PathStep s;
        s.kind = Kind::Key;
        s.key = std::move(name);
        return s;
    }

    static PathStep
    makeIndex(size_t n)
    {
        PathStep s;
        s.kind = Kind::Index;
        s.lo = n;
        s.hi = n + 1;
        return s;
    }

    static PathStep
    makeSlice(size_t m, size_t n)
    {
        PathStep s;
        s.kind = Kind::Slice;
        s.lo = m;
        s.hi = n;
        return s;
    }

    static PathStep
    makeWildcard()
    {
        PathStep s;
        s.kind = Kind::Wildcard;
        s.lo = 0;
        s.hi = std::numeric_limits<size_t>::max();
        return s;
    }

    static PathStep
    makeDescendant(std::string name)
    {
        PathStep s;
        s.kind = Kind::Descendant;
        s.key = std::move(name);
        return s;
    }

    static PathStep
    makeFilter(std::string field, FilterOp op, FilterLiteral literal)
    {
        PathStep s;
        s.kind = Kind::Filter;
        s.key = std::move(field);
        s.op = op;
        s.literal = std::move(literal);
        // A filter examines every element: cover the full index range
        // so generic array-step range logic treats it conservatively.
        s.lo = 0;
        s.hi = std::numeric_limits<size_t>::max();
        return s;
    }

    /** True for the array-selecting step kinds (filters included). */
    bool
    isArrayStep() const
    {
        return kind == Kind::Index || kind == Kind::Slice ||
               kind == Kind::Wildcard || kind == Kind::Filter;
    }

    /** For array steps: does array position @p idx satisfy the step? */
    bool
    coversIndex(size_t idx) const
    {
        return idx >= lo && idx < hi;
    }

    bool operator==(const PathStep&) const = default;
};

/** A parsed path expression: `$` followed by zero or more steps. */
struct PathQuery
{
    std::vector<PathStep> steps;

    size_t size() const { return steps.size(); }
    bool empty() const { return steps.empty(); }
    const PathStep& operator[](size_t i) const { return steps[i]; }

    /**
     * Container type required of the value *selected by* step
     * @p i — i.e. inferred from the following step (paper §3.2's type
     * inference).  i == size() (or the last step) yields Any.
     */
    ExpectedType
    expectedTypeAfter(size_t i) const
    {
        size_t next = i + 1;
        if (next >= steps.size() ||
            steps[next].kind == PathStep::Kind::Descendant)
            return ExpectedType::Any; // `..` targets may be any container
        return steps[next].isArrayStep() ? ExpectedType::Array
                                         : ExpectedType::Object;
    }

    /** True when any step is the descendant operator. */
    bool
    hasDescendant() const
    {
        for (const PathStep& s : steps) {
            if (s.kind == PathStep::Kind::Descendant)
                return true;
        }
        return false;
    }

    /** True when the final step is the descendant operator. */
    bool
    hasTerminalDescendant() const
    {
        return !steps.empty() &&
               steps.back().kind == PathStep::Kind::Descendant;
    }

    /**
     * True when a descendant step is followed by further steps — the
     * nondeterministic surface (`$..a[2].b`): evaluation then tracks a
     * multiset of automaton states rather than a single state.
     */
    bool
    hasInteriorDescendant() const
    {
        for (size_t i = 0; i + 1 < steps.size(); ++i) {
            if (steps[i].kind == PathStep::Kind::Descendant)
                return true;
        }
        return false;
    }

    /** True when any step is a filter predicate. */
    bool
    hasFilter() const
    {
        for (const PathStep& s : steps) {
            if (s.kind == PathStep::Kind::Filter)
                return true;
        }
        return false;
    }

    /**
     * Canonical round-trip of the query: parse(toString()) == *this
     * and toString() is a fixed point, so it doubles as the plan-cache
     * normal form (plain keys stay dotted, exotic keys are
     * bracket-quoted, filters print without interior whitespace,
     * numbers print in shortest-round-trip form).
     */
    std::string toString() const;

    bool operator==(const PathQuery&) const = default;
};

} // namespace jsonski::path

#endif // JSONSKI_PATH_AST_H
