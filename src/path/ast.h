/**
 * @file
 * JSONPath abstract syntax shared by every engine.
 *
 * The supported dialect matches the paper (§5.1): root `$`, child
 * (`.name` / `['name']`), array index `[n]`, index range `[m:n]`
 * (half-open, so `[2:4]` selects the 3rd and 4th elements), and the
 * array wildcard `[*]`.  Going beyond the paper's implementation (it
 * names `..` as future work), the descendant operator is supported in
 * terminal position (`$..name`, `$.a[*]..name`): it selects every
 * attribute called `name` at any depth under the current value, in
 * document (pre-)order.
 */
#ifndef JSONSKI_PATH_AST_H
#define JSONSKI_PATH_AST_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace jsonski::path {

/** The JSON container type a path step can only apply to. */
enum class ExpectedType : uint8_t {
    Object, ///< next step is a key: the value must be an object
    Array,  ///< next step is an index/slice/wildcard: must be an array
    Any,    ///< no next step: the value is the output, any type
};

/** One step of a path expression. */
struct PathStep
{
    enum class Kind : uint8_t {
        Key,        ///< `.name` — match an object attribute name
        Index,      ///< `[n]` — match exactly one array position
        Slice,      ///< `[m:n]` — match array positions in [m, n)
        Wildcard,   ///< `[*]` — match every array position
        Descendant, ///< `..name` — match the attribute at any depth
    };

    Kind kind = Kind::Key;
    std::string key;   ///< attribute name, Kind::Key only
    size_t lo = 0;     ///< first index (Index/Slice)
    size_t hi = 0;     ///< one past last index (Index/Slice)

    static PathStep
    makeKey(std::string name)
    {
        PathStep s;
        s.kind = Kind::Key;
        s.key = std::move(name);
        return s;
    }

    static PathStep
    makeIndex(size_t n)
    {
        PathStep s;
        s.kind = Kind::Index;
        s.lo = n;
        s.hi = n + 1;
        return s;
    }

    static PathStep
    makeSlice(size_t m, size_t n)
    {
        PathStep s;
        s.kind = Kind::Slice;
        s.lo = m;
        s.hi = n;
        return s;
    }

    static PathStep
    makeWildcard()
    {
        PathStep s;
        s.kind = Kind::Wildcard;
        s.lo = 0;
        s.hi = std::numeric_limits<size_t>::max();
        return s;
    }

    static PathStep
    makeDescendant(std::string name)
    {
        PathStep s;
        s.kind = Kind::Descendant;
        s.key = std::move(name);
        return s;
    }

    /** True for the array-selecting step kinds. */
    bool
    isArrayStep() const
    {
        return kind == Kind::Index || kind == Kind::Slice ||
               kind == Kind::Wildcard;
    }

    /** For array steps: does array position @p idx satisfy the step? */
    bool
    coversIndex(size_t idx) const
    {
        return idx >= lo && idx < hi;
    }

    bool operator==(const PathStep&) const = default;
};

/** A parsed path expression: `$` followed by zero or more steps. */
struct PathQuery
{
    std::vector<PathStep> steps;

    size_t size() const { return steps.size(); }
    bool empty() const { return steps.empty(); }
    const PathStep& operator[](size_t i) const { return steps[i]; }

    /**
     * Container type required of the value *selected by* step
     * @p i — i.e. inferred from the following step (paper §3.2's type
     * inference).  i == size() (or the last step) yields Any.
     */
    ExpectedType
    expectedTypeAfter(size_t i) const
    {
        size_t next = i + 1;
        if (next >= steps.size() ||
            steps[next].kind == PathStep::Kind::Descendant)
            return ExpectedType::Any; // `..` targets may be any container
        return steps[next].isArrayStep() ? ExpectedType::Array
                                         : ExpectedType::Object;
    }

    /** True when the final step is the descendant operator. */
    bool
    hasDescendant() const
    {
        return !steps.empty() &&
               steps.back().kind == PathStep::Kind::Descendant;
    }

    /** Human-readable round-trip of the query. */
    std::string toString() const;

    bool operator==(const PathQuery&) const = default;
};

} // namespace jsonski::path

#endif // JSONSKI_PATH_AST_H
