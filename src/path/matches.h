/**
 * @file
 * Match delivery interface shared by every query engine (JSONSki and
 * the four baselines), so results are comparable across engines.
 */
#ifndef JSONSKI_PATH_MATCHES_H
#define JSONSKI_PATH_MATCHES_H

#include <string>
#include <string_view>
#include <vector>

namespace jsonski::path {

/** Receiver for matched values. */
class MatchSink
{
  public:
    virtual ~MatchSink() = default;

    /**
     * Called once per match with the matched value's raw JSON text
     * (containers include their braces; strings include quotes).  The
     * view aliases the engine's input buffer and is only valid for the
     * duration of the call.
     */
    virtual void onMatch(std::string_view value) = 0;
};

/** Sink that copies every match into a vector. */
class CollectSink : public MatchSink
{
  public:
    void
    onMatch(std::string_view value) override
    {
        values.push_back(std::string(value));
    }

    std::vector<std::string> values;
};

} // namespace jsonski::path

#endif // JSONSKI_PATH_MATCHES_H
