/**
 * @file
 * Text parser for the JSONPath dialect described in path/ast.h.
 */
#ifndef JSONSKI_PATH_PARSER_H
#define JSONSKI_PATH_PARSER_H

#include <string_view>

#include "path/ast.h"

namespace jsonski::path {

/**
 * Parse a JSONPath expression such as `$.pd[*].cp[1:3].id`.
 *
 * @throws jsonski::PathError on syntax errors or unsupported operators
 *         (e.g. the descendant operator `..`).
 */
PathQuery parse(std::string_view text);

} // namespace jsonski::path

#endif // JSONSKI_PATH_PARSER_H
