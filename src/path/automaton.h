/**
 * @file
 * Query automaton compiled from a path expression (paper Figure 5).
 *
 * A path with n steps yields states 0..n: state i means "the first i
 * steps have been matched on the path from the root to the current
 * value".  State n is ACCEPT.  A failed transition yields the special
 * UNMATCHED state.  The per-level stack the paper describes is owned by
 * the *caller*: the recursive-descent streamer keeps it implicitly in
 * its call stack, while the JPStream-style baseline keeps an explicit
 * query stack — both drive their transitions through this class so all
 * engines share one matching semantics.
 */
#ifndef JSONSKI_PATH_AUTOMATON_H
#define JSONSKI_PATH_AUTOMATON_H

#include <string_view>

#include "path/ast.h"

namespace jsonski::path {

/** See file comment. */
class QueryAutomaton
{
  public:
    /** Sentinel state for "matching failed at this level". */
    static constexpr int kUnmatched = -1;

    explicit QueryAutomaton(PathQuery query) : query_(std::move(query)) {}

    /** The compiled query. */
    const PathQuery& query() const { return query_; }

    /** Initial state (root value reached, nothing matched yet). */
    int start() const { return 0; }

    /** Accepting state (every step matched). */
    int accept() const { return static_cast<int>(query_.size()); }

    /** True when @p state is the accepting state. */
    bool isAccept(int state) const { return state == accept(); }

    /**
     * [Key] transition: object attribute @p key consumed while the
     * current level's state is @p state.
     */
    int
    onKey(int state, std::string_view key) const
    {
        if (state < 0)
            return kUnmatched;
        if (isAccept(state)) {
            // Values inside an accepted subtree only stay live under a
            // terminal descendant step, which keeps searching: a
            // matching name re-accepts, anything else resumes the
            // search state.
            if (query_.hasDescendant()) {
                const PathStep& d = query_[query_.size() - 1];
                return d.key == key ? state : state - 1;
            }
            return kUnmatched;
        }
        const PathStep& s = query_[static_cast<size_t>(state)];
        if (s.kind == PathStep::Kind::Key && s.key == key)
            return state + 1;
        if (s.kind == PathStep::Kind::Descendant)
            return s.key == key ? state + 1 : state; // stay at any depth
        return kUnmatched;
    }

    /**
     * Array-element transition: element at position @p idx of an array
     * whose own state is @p state.
     */
    int
    onElement(int state, size_t idx) const
    {
        if (state < 0)
            return kUnmatched;
        if (isAccept(state)) {
            // Inside an accepted array under a terminal descendant
            // step, elements keep the search alive but never match.
            return query_.hasDescendant() ? state - 1 : kUnmatched;
        }
        const PathStep& s = query_[static_cast<size_t>(state)];
        if (s.isArrayStep() && s.coversIndex(idx))
            return state + 1;
        if (s.kind == PathStep::Kind::Descendant)
            return state; // stay at any depth
        return kUnmatched;
    }

    /**
     * Container type the value at @p state must have for matching to
     * continue (paper §3.2 type inference).  Accepting values may be of
     * any type.
     */
    ExpectedType
    containerAt(int state) const
    {
        if (state < 0 || isAccept(state))
            return ExpectedType::Any;
        const PathStep& s = query_[static_cast<size_t>(state)];
        if (s.kind == PathStep::Kind::Descendant)
            return ExpectedType::Any;
        return s.isArrayStep() ? ExpectedType::Array
                               : ExpectedType::Object;
    }

    /**
     * For array steps: the half-open index range [lo, hi) the step
     * selects.  @pre containerAt(state) == ExpectedType::Array
     */
    void
    indexRange(int state, size_t& lo, size_t& hi) const
    {
        const PathStep& s = query_[static_cast<size_t>(state)];
        lo = s.lo;
        hi = s.hi;
    }

  private:
    PathQuery query_;
};

} // namespace jsonski::path

#endif // JSONSKI_PATH_AUTOMATON_H
