/**
 * @file
 * Query automaton compiled from a path expression (paper Figure 5).
 *
 * A path with n steps yields states 0..n: state i means "the first i
 * steps have been matched on the path from the root to the current
 * value".  State n is ACCEPT.  A failed transition yields the special
 * UNMATCHED state.  The per-level stack the paper describes is owned by
 * the *caller*: the recursive-descent streamer keeps it implicitly in
 * its call stack, while the JPStream-style baseline keeps an explicit
 * query stack — both drive their transitions through this class so all
 * engines share one matching semantics.
 */
#ifndef JSONSKI_PATH_AUTOMATON_H
#define JSONSKI_PATH_AUTOMATON_H

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "path/ast.h"

namespace jsonski::path {

/** See file comment. */
class QueryAutomaton
{
  public:
    /** Sentinel state for "matching failed at this level". */
    static constexpr int kUnmatched = -1;

    explicit QueryAutomaton(PathQuery query) : query_(std::move(query)) {}

    /** The compiled query. */
    const PathQuery& query() const { return query_; }

    /** Initial state (root value reached, nothing matched yet). */
    int start() const { return 0; }

    /** Accepting state (every step matched). */
    int accept() const { return static_cast<int>(query_.size()); }

    /** True when @p state is the accepting state. */
    bool isAccept(int state) const { return state == accept(); }

    /**
     * [Key] transition: object attribute @p key consumed while the
     * current level's state is @p state.
     */
    int
    onKey(int state, std::string_view key) const
    {
        if (state < 0)
            return kUnmatched;
        if (isAccept(state)) {
            // Values inside an accepted subtree only stay live under a
            // terminal descendant step, which keeps searching: a
            // matching name re-accepts, anything else resumes the
            // search state.
            if (query_.hasTerminalDescendant()) {
                const PathStep& d = query_[query_.size() - 1];
                return d.key == key ? state : state - 1;
            }
            return kUnmatched;
        }
        const PathStep& s = query_[static_cast<size_t>(state)];
        if (s.kind == PathStep::Kind::Key && s.key == key)
            return state + 1;
        if (s.kind == PathStep::Kind::Descendant)
            return s.key == key ? state + 1 : state; // stay at any depth
        return kUnmatched;
    }

    /**
     * Array-element transition: element at position @p idx of an array
     * whose own state is @p state.
     */
    int
    onElement(int state, size_t idx) const
    {
        if (state < 0)
            return kUnmatched;
        if (isAccept(state)) {
            // Inside an accepted array under a terminal descendant
            // step, elements keep the search alive but never match.
            return query_.hasTerminalDescendant() ? state - 1
                                                  : kUnmatched;
        }
        const PathStep& s = query_[static_cast<size_t>(state)];
        if (s.isArrayStep() && s.coversIndex(idx))
            return state + 1;
        if (s.kind == PathStep::Kind::Descendant)
            return state; // stay at any depth
        return kUnmatched;
    }

    /**
     * Container type the value at @p state must have for matching to
     * continue (paper §3.2 type inference).  Accepting values may be of
     * any type.
     */
    ExpectedType
    containerAt(int state) const
    {
        if (state < 0 || isAccept(state))
            return ExpectedType::Any;
        const PathStep& s = query_[static_cast<size_t>(state)];
        if (s.kind == PathStep::Kind::Descendant)
            return ExpectedType::Any;
        return s.isArrayStep() ? ExpectedType::Array
                               : ExpectedType::Object;
    }

    /**
     * For array steps: the half-open index range [lo, hi) the step
     * selects.  @pre containerAt(state) == ExpectedType::Array
     */
    void
    indexRange(int state, size_t& lo, size_t& hi) const
    {
        const PathStep& s = query_[static_cast<size_t>(state)];
        lo = s.lo;
        hi = s.hi;
    }

  private:
    PathQuery query_;
};

/**
 * Multiset of NFA states for the nondeterministic query surface
 * (interior descendants and filters; DESIGN.md §13).  State i means
 * "the first i steps matched along some root-to-here path"; the count
 * is the number of distinct such paths, and a value is emitted once
 * per accepting path.  Kept sorted by state; tiny (bounded by query
 * length), so linear operations are fine.
 */
struct NfaSet
{
    std::vector<std::pair<size_t, uint64_t>> states;

    bool empty() const { return states.empty(); }

    void
    add(size_t state, uint64_t count)
    {
        for (auto& [s, c] : states) {
            if (s == state) {
                c += count;
                return;
            }
        }
        states.emplace_back(state, count);
        for (size_t i = states.size(); i > 1; --i) {
            if (states[i - 1].first < states[i - 2].first)
                std::swap(states[i - 1], states[i - 2]);
            else
                break;
        }
    }

    /** Accepting-path multiplicity (state == q.size()). */
    uint64_t
    acceptCount(const PathQuery& q) const
    {
        for (const auto& [s, c] : states) {
            if (s == q.size())
                return c;
        }
        return 0;
    }

    /** Copy without the accepting state. */
    NfaSet
    withoutAccept(const PathQuery& q) const
    {
        NfaSet out;
        for (const auto& [s, c] : states) {
            if (s != q.size())
                out.states.emplace_back(s, c);
        }
        return out;
    }
};

/**
 * [Key] transition over the multiset.  Accepting states are dropped:
 * whenever state n is produced by a descendant step, the searching
 * state that produced it stays co-resident in the set, so the
 * continued search the deterministic automaton emulates with its
 * "state - 1" trick is already represented.
 *
 * @p consumed (parallel to in.states, carried across the members of
 * ONE object) pins the engines' duplicate-key semantics: a Key step
 * binds to the first member with its name only — the streamer leaves
 * the object via G4 after that member — while a Descendant step keeps
 * examining every member, duplicates included.  Entries are marked
 * here when a Key state advances.
 */
inline NfaSet
nfaOnKey(const PathQuery& q, const NfaSet& in, std::string_view key,
         std::vector<char>* consumed = nullptr)
{
    NfaSet out;
    for (size_t i = 0; i < in.states.size(); ++i) {
        auto [s, c] = in.states[i];
        if (s >= q.size())
            continue;
        const PathStep& step = q[s];
        if (step.kind == PathStep::Kind::Key) {
            if (consumed && (*consumed)[i])
                continue;
            if (step.key == key) {
                out.add(s + 1, c);
                if (consumed)
                    (*consumed)[i] = 1;
            }
        } else if (step.kind == PathStep::Kind::Descendant) {
            out.add(s, c); // keep searching at any depth
            if (step.key == key)
                out.add(s + 1, c);
        }
    }
    return out;
}

/**
 * Array-element transition over the multiset.  Filter steps cannot be
 * resolved from the index alone: their (state, count) pairs are
 * appended to @p pending_filters and the caller adds (state + 1,
 * count) for each verdict that comes back true.
 */
inline NfaSet
nfaOnElement(const PathQuery& q, const NfaSet& in, size_t idx,
             std::vector<std::pair<size_t, uint64_t>>* pending_filters)
{
    NfaSet out;
    for (const auto& [s, c] : in.states) {
        if (s >= q.size())
            continue;
        const PathStep& step = q[s];
        if (step.kind == PathStep::Kind::Filter) {
            if (pending_filters)
                pending_filters->emplace_back(s, c);
        } else if (step.isArrayStep()) {
            if (step.coversIndex(idx))
                out.add(s + 1, c);
        } else if (step.kind == PathStep::Kind::Descendant) {
            out.add(s, c);
        }
    }
    return out;
}

/** Can entering an object make progress from @p set? */
inline bool
nfaWantsObject(const PathQuery& q, const NfaSet& set)
{
    for (const auto& [s, c] : set.states) {
        (void)c;
        if (s >= q.size())
            continue;
        if (q[s].kind == PathStep::Kind::Key ||
            q[s].kind == PathStep::Kind::Descendant)
            return true;
    }
    return false;
}

/** Can entering an array make progress from @p set? */
inline bool
nfaWantsArray(const PathQuery& q, const NfaSet& set)
{
    for (const auto& [s, c] : set.states) {
        (void)c;
        if (s >= q.size())
            continue;
        if (q[s].isArrayStep() ||
            q[s].kind == PathStep::Kind::Descendant)
            return true;
    }
    return false;
}

/** Is any live state a descendant search? */
inline bool
nfaHasDescendant(const PathQuery& q, const NfaSet& set)
{
    for (const auto& [s, c] : set.states) {
        (void)c;
        if (s < q.size() && q[s].kind == PathStep::Kind::Descendant)
            return true;
    }
    return false;
}

} // namespace jsonski::path

#endif // JSONSKI_PATH_AUTOMATON_H
