/**
 * @file
 * Normalized multi-query sets: the shared front half of one-pass
 * multi-query batching (DESIGN.md §15).
 *
 * A client hands the engine a *list* of JSONPath texts; the engine
 * wants a *set*: each query in its canonical `PathQuery::toString()`
 * form, duplicates collapsed, and a stable small-integer id per
 * distinct query so trie nodes can carry per-level bitsets of the
 * queries still live below them.  QuerySet performs that normalization
 * once and keeps the evidence:
 *
 *   - `distinct` / `canonical`: the deduplicated queries in
 *     first-occurrence order (so duplicate-free inputs keep their
 *     positions — existing single-list callers see no index shuffle);
 *   - `id_of`: input position -> distinct id, the map that lets a
 *     service answer a request containing duplicates with one frame
 *     stream per distinct query and the request's ids mapped onto it;
 *   - `key()`: the *order-insensitive* canonical form (sorted unique
 *     canonical texts, comma-joined) — the plan-cache key, so
 *     `{$.a,$.b}` and `{$.b,$.a,$.a}` share one compiled plan.
 *
 * QueryBits is the bitset the multi-query trie stores per level: one
 * bit per distinct query id.
 */
#ifndef JSONSKI_PATH_QUERYSET_H
#define JSONSKI_PATH_QUERYSET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "path/ast.h"

namespace jsonski::path {

/** Fixed-width bitset over the distinct query ids of one QuerySet. */
class QueryBits
{
  public:
    QueryBits() = default;

    /** All-clear bitset able to hold ids [0, bits). */
    explicit QueryBits(size_t bits) : words_((bits + 63) / 64, 0) {}

    void
    clear()
    {
        for (uint64_t& w : words_)
            w = 0;
    }

    void set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

    bool
    test(size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    bool
    any() const
    {
        for (uint64_t w : words_) {
            if (w != 0)
                return true;
        }
        return false;
    }

    /** Number of set bits. */
    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : words_)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

    QueryBits&
    operator|=(const QueryBits& o)
    {
        for (size_t i = 0; i < words_.size() && i < o.words_.size(); ++i)
            words_[i] |= o.words_[i];
        return *this;
    }

    /** Invoke @p fn with each set id, ascending. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (size_t wi = 0; wi < words_.size(); ++wi) {
            uint64_t w = words_[wi];
            while (w != 0) {
                unsigned bit =
                    static_cast<unsigned>(__builtin_ctzll(w));
                fn(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

  private:
    std::vector<uint64_t> words_;
};

/** See file comment. */
struct QuerySet
{
    /** Deduplicated queries, first-occurrence order. */
    std::vector<PathQuery> distinct;

    /** Canonical toString() text per distinct query. */
    std::vector<std::string> canonical;

    /** Input position -> distinct id. */
    std::vector<size_t> id_of;

    /** Distinct query count. */
    size_t size() const { return distinct.size(); }

    /** Input positions the set was normalized from (>= size()). */
    size_t inputCount() const { return id_of.size(); }

    /**
     * Order-insensitive canonical form: sorted unique canonical texts,
     * comma-joined.  The plan-cache key.
     */
    std::string key() const;

    /** The sorted unique canonical texts key() joins. */
    std::vector<std::string> sortedCanonical() const;

    /**
     * For each input position, the index of its query within
     * @p plan_texts (a distinct canonical list, e.g. a cached plan's
     * query texts).  This is how a request whose list arrived in any
     * order/multiplicity is mapped onto a plan compiled from key().
     *
     * @throws PathError when a query is absent from @p plan_texts
     *         (the plan does not serve this set).
     */
    std::vector<size_t>
    mapOnto(const std::vector<std::string>& plan_texts) const;

    /**
     * First input position of each distinct id — the representative a
     * service tags match frames with so duplicate request entries share
     * one frame stream.
     */
    std::vector<size_t> representatives() const;

    /** Normalize a parsed query list (canonicalize + stable dedup). */
    static QuerySet normalize(std::vector<PathQuery> queries);

    /**
     * Parse and normalize query texts.
     * @throws PathError on a malformed query.
     */
    static QuerySet fromTexts(const std::vector<std::string>& texts);
};

} // namespace jsonski::path

#endif // JSONSKI_PATH_QUERYSET_H
