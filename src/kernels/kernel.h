/**
 * @file
 * Runtime SIMD kernel dispatch.
 *
 * The bit-parallel substrate (64-byte block classification, prefix-XOR,
 * PDEP-select, ASCII screening for UTF-8 validation) is the only part
 * of the codebase whose machine code depends on the instruction set.
 * Instead of baking one ISA in at build time with -march=native, every
 * variant is compiled into its own translation unit with per-file
 * target options and selected at runtime:
 *
 *   - "avx2"     — 32-byte vector compares, CLMUL prefix-XOR, PDEP
 *                  select (Haswell+; what the paper's numbers assume)
 *   - "westmere" — 16-byte SSE compares + CLMUL prefix-XOR (alias
 *                  "sse2" accepted for the lookup)
 *   - "scalar"   — portable SWAR/loop code, runnable anywhere
 *
 * Selection happens once, at first use: the best kernel whose
 * supported() cpuid probe passes wins, unless JSONSKI_KERNEL=<name>
 * overrides it (strict token parse; an unknown, malformed, or
 * unsupported-on-this-host name throws jsonski::ConfigError).  After
 * resolution the choice never changes for the life of the process —
 * carries threaded between blocks assume one kernel produced them all
 * (tests may swap kernels between runs via Override, below).
 *
 * Contract: every kernel must produce bit-identical bitmaps, verdicts,
 * and select/prefix results for every input (tests/
 * kernel_equivalence_test.cpp enforces this exhaustively).
 */
#ifndef JSONSKI_KERNELS_KERNEL_H
#define JSONSKI_KERNELS_KERNEL_H

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

namespace jsonski::kernels {

/** Raw per-character equality bitmaps over one 64-byte block (bit i =
 *  byte i, "mirrored" convention of util/bits.h).  No string masking —
 *  that is ISA-independent follow-up work done by the classifier. */
struct RawBits64
{
    uint64_t backslash, quote;
    uint64_t open_brace, close_brace, open_bracket, close_bracket;
    uint64_t colon, comma, whitespace;
};

/** The string-layer subset of RawBits64 (the sequential hot path only
 *  needs these two per block). */
struct StringRaw
{
    uint64_t backslash, quote;
};

/**
 * One compiled kernel: a name, a cpuid probe, and the ISA-sensitive
 * primitives as plain function pointers.  All block functions read
 * exactly 64 bytes.
 */
struct Kernel
{
    const char* name;    ///< "avx2", "westmere", "scalar"
    int priority;        ///< higher = preferred when supported
    bool (*supported)(); ///< cpuid probe; scalar always returns true

    /** All nine metacharacter equality bitmaps for one block. */
    RawBits64 (*raw_bits)(const char* data);

    /** Backslash + quote bitmaps only (string-layer fast path). */
    StringRaw (*string_raw)(const char* data);

    /** Equality bitmap of @p c over one block. */
    uint64_t (*eq_bits)(const char* data, char c);

    /** Bitmap of bytes <= 0x20 over one block. */
    uint64_t (*whitespace_bits)(const char* data);

    /** True when all 64 bytes are ASCII (< 0x80). */
    bool (*ascii_block)(const char* data);

    /** Prefix XOR of a word (CLMUL where available). */
    uint64_t (*prefix_xor)(uint64_t x);

    /** Position of the k-th (1-based) set bit (PDEP where available).
     *  @pre 1 <= k <= popcount(x) */
    int (*select_bit)(uint64_t x, int k);
};

/** Every kernel compiled into this binary, best-first. */
const std::vector<const Kernel*>& all();

/** The subset of all() whose supported() probe passes on this host.
 *  Never empty: scalar is always runnable. */
std::vector<const Kernel*> runnable();

/** Kernel by name ("sse2" is accepted as an alias for "westmere");
 *  nullptr when no such kernel is compiled in. */
const Kernel* find(std::string_view name);

/**
 * Strict named selection, the JSONSKI_KERNEL code path: the name must
 * be a well-formed token (util/parse.h parseIdent), must name a
 * compiled kernel, and that kernel must be runnable on this host.
 *
 * @throws jsonski::ConfigError otherwise (the message lists the
 *         compiled kernels).
 */
const Kernel& select(std::string_view name);

namespace detail {
extern std::atomic<const Kernel*> g_active;
/** Slow path: resolve JSONSKI_KERNEL / cpuid once and publish. */
const Kernel& resolveActive();
} // namespace detail

/**
 * The process-wide active kernel, resolved on first call (reads
 * JSONSKI_KERNEL, else picks the best supported kernel).
 *
 * @throws jsonski::ConfigError if JSONSKI_KERNEL is set to a
 *         malformed, unknown, or unsupported name.
 */
inline const Kernel&
active()
{
    const Kernel* k = detail::g_active.load(std::memory_order_acquire);
    return k != nullptr ? *k : detail::resolveActive();
}

/** Name of the active kernel (resolving it if needed). */
inline std::string_view
activeName()
{
    return active().name;
}

/** Dispatched word-select: position of the k-th (1-based) set bit. */
inline int
selectBit(uint64_t x, int k)
{
    return active().select_bit(x, k);
}

/** Dispatched prefix XOR over a word. */
inline uint64_t
prefixXor(uint64_t x)
{
    return active().prefix_xor(x);
}

/**
 * Test-only RAII kernel swap: forces @p k active for the scope, then
 * restores the previous resolution state.  Not thread-safe — only for
 * single-threaded differential tests and per-kernel benchmarks that
 * replay the same input under every runnable kernel.
 */
class Override
{
  public:
    explicit Override(const Kernel& k)
        : prev_(detail::g_active.exchange(&k, std::memory_order_acq_rel))
    {}

    Override(const Override&) = delete;
    Override& operator=(const Override&) = delete;

    ~Override()
    {
        detail::g_active.store(prev_, std::memory_order_release);
    }

  private:
    const Kernel* prev_;
};

} // namespace jsonski::kernels

#endif // JSONSKI_KERNELS_KERNEL_H
