/**
 * @file
 * Portable scalar kernel: plain loops and SWAR over uint64_t only, no
 * intrinsics.  Runnable on every host; the reference everything else is
 * differentially tested against, and the floor the per-kernel bench
 * sweep measures the SIMD speedup from (paper §4).
 *
 * Built with baseline codegen flags even when the rest of the tree uses
 * -march=native, so "scalar" genuinely means scalar (see
 * src/CMakeLists.txt per-source options).
 */
#include "kernels/kernels_internal.h"

#include "util/bits.h"

namespace jsonski::kernels {
namespace {

// 64 bytes per block (== intervals::kBlockSize; kernels sit below the
// intervals layer, so the constant is not imported from there).
constexpr size_t kBlockSize = 64;

RawBits64
rawBits(const char* data)
{
    RawBits64 r{};
    for (size_t i = 0; i < kBlockSize; ++i) {
        uint64_t bit = uint64_t{1} << i;
        switch (data[i]) {
          case '\\': r.backslash |= bit; break;
          case '"': r.quote |= bit; break;
          case '{': r.open_brace |= bit; break;
          case '}': r.close_brace |= bit; break;
          case '[': r.open_bracket |= bit; break;
          case ']': r.close_bracket |= bit; break;
          case ':': r.colon |= bit; break;
          case ',': r.comma |= bit; break;
          case ' ':
          case '\t':
          case '\n':
          case '\r': r.whitespace |= bit; break;
          default: break;
        }
    }
    return r;
}

StringRaw
stringRaw(const char* data)
{
    StringRaw r{};
    for (size_t i = 0; i < kBlockSize; ++i) {
        uint64_t bit = uint64_t{1} << i;
        if (data[i] == '\\')
            r.backslash |= bit;
        else if (data[i] == '"')
            r.quote |= bit;
    }
    return r;
}

uint64_t
eqBits(const char* data, char c)
{
    uint64_t out = 0;
    for (size_t i = 0; i < kBlockSize; ++i) {
        if (data[i] == c)
            out |= uint64_t{1} << i;
    }
    return out;
}

uint64_t
whitespaceBits(const char* data)
{
    uint64_t out = 0;
    for (size_t i = 0; i < kBlockSize; ++i) {
        if (static_cast<unsigned char>(data[i]) <= 0x20)
            out |= uint64_t{1} << i;
    }
    return out;
}

bool
asciiBlock(const char* p)
{
    uint64_t acc = 0;
    for (int i = 0; i < 8; ++i) {
        uint64_t w;
        __builtin_memcpy(&w, p + i * 8, 8);
        acc |= w;
    }
    return (acc & 0x8080808080808080ULL) == 0;
}

bool
supported()
{
    return true;
}

} // namespace

const Kernel kScalarKernel = {
    "scalar",
    /*priority=*/0,
    supported,
    rawBits,
    stringRaw,
    eqBits,
    whitespaceBits,
    asciiBlock,
    bits::prefixXor, // log-step shift cascade (util/bits.h)
    bits::selectBit, // clear-lowest loop (util/bits.h)
};

} // namespace jsonski::kernels
