/**
 * @file
 * Westmere-class kernel: 16-byte SSE compares for the equality bitmaps
 * and carry-less multiplication (PCLMUL) for the prefix XOR — the 2010
 * ISA baseline simdjson calls "westmere".  No BMI2, so bit selection
 * stays the portable clear-lowest loop.
 *
 * Compiled with -msse4.2 -mpclmul only in this TU (see
 * src/CMakeLists.txt); the cpuid probe gates it at runtime.
 */
#include "kernels/kernels_internal.h"

#if JSONSKI_KERNELS_X86

#include <immintrin.h>

#include "util/bits.h"

namespace jsonski::kernels {
namespace {

struct Vecs
{
    __m128i v[4];
};

Vecs
load64(const char* data)
{
    Vecs x;
    for (int i = 0; i < 4; ++i)
        x.v[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(data + i * 16));
    return x;
}

uint64_t
eqMask(const Vecs& x, char c)
{
    __m128i needle = _mm_set1_epi8(c);
    uint64_t out = 0;
    for (int i = 0; i < 4; ++i) {
        uint64_t m = static_cast<uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(x.v[i], needle)));
        out |= m << (i * 16);
    }
    return out;
}

RawBits64
rawBits(const char* data)
{
    Vecs x = load64(data);
    RawBits64 r;
    r.backslash = eqMask(x, '\\');
    r.quote = eqMask(x, '"');
    r.open_brace = eqMask(x, '{');
    r.close_brace = eqMask(x, '}');
    r.open_bracket = eqMask(x, '[');
    r.close_bracket = eqMask(x, ']');
    r.colon = eqMask(x, ':');
    r.comma = eqMask(x, ',');
    r.whitespace = eqMask(x, ' ') | eqMask(x, '\t') | eqMask(x, '\n') |
                   eqMask(x, '\r');
    return r;
}

StringRaw
stringRaw(const char* data)
{
    Vecs x = load64(data);
    return {eqMask(x, '\\'), eqMask(x, '"')};
}

uint64_t
eqBits(const char* data, char c)
{
    return eqMask(load64(data), c);
}

uint64_t
whitespaceBits(const char* data)
{
    // bytes <= 0x20  <=>  max(byte, 0x20) == 0x20 (unsigned)
    Vecs x = load64(data);
    __m128i limit = _mm_set1_epi8(0x20);
    uint64_t out = 0;
    for (int i = 0; i < 4; ++i) {
        uint64_t m = static_cast<uint32_t>(_mm_movemask_epi8(
            _mm_cmpeq_epi8(_mm_max_epu8(x.v[i], limit), limit)));
        out |= m << (i * 16);
    }
    return out;
}

bool
asciiBlock(const char* p)
{
    Vecs x = load64(p);
    int acc = 0;
    for (int i = 0; i < 4; ++i)
        acc |= _mm_movemask_epi8(x.v[i]);
    return acc == 0;
}

uint64_t
clmulPrefixXor(uint64_t x)
{
    __m128i v = _mm_set_epi64x(0, static_cast<int64_t>(x));
    __m128i ones = _mm_set1_epi8(static_cast<char>(0xFF));
    __m128i r = _mm_clmulepi64_si128(v, ones, 0);
    return static_cast<uint64_t>(_mm_cvtsi128_si64(r));
}

bool
supported()
{
    __builtin_cpu_init();
    return __builtin_cpu_supports("sse4.2") &&
           __builtin_cpu_supports("pclmul");
}

} // namespace

const Kernel kWestmereKernel = {
    "westmere",
    /*priority=*/1,
    supported,
    rawBits,
    stringRaw,
    eqBits,
    whitespaceBits,
    asciiBlock,
    clmulPrefixXor,
    bits::selectBit, // no BMI2 at this ISA level
};

} // namespace jsonski::kernels

#endif // JSONSKI_KERNELS_X86
