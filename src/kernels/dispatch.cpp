/**
 * @file
 * Kernel registry and one-time runtime selection (DESIGN.md §11).
 *
 * Resolution order at first use:
 *   1. JSONSKI_KERNEL=<name> in the environment — strict token parse,
 *      then exact lookup ("sse2" aliases "westmere"); malformed,
 *      unknown, or unsupported names throw jsonski::ConfigError rather
 *      than silently falling back, so a misconfigured deployment fails
 *      loudly at the first classified block.
 *   2. Otherwise the highest-priority kernel whose cpuid probe passes.
 *
 * The winner is published through an acquire/release atomic; concurrent
 * first uses may race to resolve but deterministically agree on the
 * result, so the publish is idempotent.
 */
#include "kernels/kernels_internal.h"

#include <cstdlib>
#include <string>

#include "util/error.h"
#include "util/parse.h"

namespace jsonski::kernels {

namespace detail {
std::atomic<const Kernel*> g_active{nullptr};
} // namespace detail

const std::vector<const Kernel*>&
all()
{
    static const std::vector<const Kernel*> kernels = {
#if JSONSKI_KERNELS_X86
        &kAvx2Kernel,
        &kWestmereKernel,
#endif
        &kScalarKernel,
    };
    return kernels;
}

std::vector<const Kernel*>
runnable()
{
    std::vector<const Kernel*> out;
    for (const Kernel* k : all()) {
        if (k->supported())
            out.push_back(k);
    }
    return out;
}

const Kernel*
find(std::string_view name)
{
    if (name == "sse2")
        name = "westmere";
    for (const Kernel* k : all()) {
        if (name == k->name)
            return k;
    }
    return nullptr;
}

namespace {

std::string
compiledNames()
{
    std::string names;
    for (const Kernel* k : all()) {
        if (!names.empty())
            names += ", ";
        names += k->name;
    }
    return names;
}

} // namespace

const Kernel&
select(std::string_view name)
{
    if (!parseIdent(name))
        throw ConfigError("JSONSKI_KERNEL is not a valid kernel name "
                          "(want one of: " +
                          compiledNames() + ")");
    const Kernel* k = find(name);
    if (k == nullptr)
        throw ConfigError("unknown kernel \"" + std::string(name) +
                          "\" (compiled kernels: " + compiledNames() +
                          ")");
    if (!k->supported())
        throw ConfigError("kernel \"" + std::string(k->name) +
                          "\" is not supported on this host (cpuid "
                          "probe failed)");
    return *k;
}

namespace detail {

const Kernel&
resolveActive()
{
    const Kernel* chosen = nullptr;
    const char* env = std::getenv("JSONSKI_KERNEL");
    if (env != nullptr && *env != '\0') {
        chosen = &select(env);
    } else {
        for (const Kernel* k : all()) {
            if (k->supported()) {
                chosen = k;
                break;
            }
        }
    }
    // all() is best-first and scalar always probes true.
    g_active.store(chosen, std::memory_order_release);
    return *chosen;
}

} // namespace detail

} // namespace jsonski::kernels
