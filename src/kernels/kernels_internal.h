/**
 * @file
 * Internal registry glue for the kernel translation units.  Each kernel
 * TU defines exactly one `const Kernel` object; dispatch.cpp collects
 * them.  The x86 kernels compile to empty TUs on other architectures
 * (their CMake per-source -m flags are likewise x86-gated).
 */
#ifndef JSONSKI_KERNELS_KERNELS_INTERNAL_H
#define JSONSKI_KERNELS_KERNELS_INTERNAL_H

#include "kernels/kernel.h"

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define JSONSKI_KERNELS_X86 1
#else
#define JSONSKI_KERNELS_X86 0
#endif

namespace jsonski::kernels {

extern const Kernel kScalarKernel;
#if JSONSKI_KERNELS_X86
extern const Kernel kWestmereKernel;
extern const Kernel kAvx2Kernel;
#endif

} // namespace jsonski::kernels

#endif // JSONSKI_KERNELS_KERNELS_INTERNAL_H
