/**
 * @file
 * AVX2 kernel: 32-byte vector compares for the equality bitmaps,
 * carry-less multiplication (PCLMUL) for the prefix XOR, and PDEP
 * (BMI2) for O(1) bit selection — the configuration the paper's
 * Algorithm 3 measurements assume (Haswell and newer).
 *
 * Compiled with -mavx2 -mbmi -mbmi2 -mpclmul -mlzcnt only in this TU
 * (see src/CMakeLists.txt); the cpuid probe gates it at runtime.
 */
#include "kernels/kernels_internal.h"

#if JSONSKI_KERNELS_X86

#include <immintrin.h>

#include "util/bits.h"

namespace jsonski::kernels {
namespace {

struct Vecs
{
    __m256i lo, hi;
};

Vecs
load64(const char* data)
{
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(data)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(data + 32))};
}

uint64_t
eqMask(const Vecs& x, char c)
{
    __m256i needle = _mm256_set1_epi8(c);
    uint32_t m_lo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(x.lo, needle)));
    uint32_t m_hi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(x.hi, needle)));
    return (static_cast<uint64_t>(m_hi) << 32) | m_lo;
}

RawBits64
rawBits(const char* data)
{
    Vecs x = load64(data);
    RawBits64 r;
    r.backslash = eqMask(x, '\\');
    r.quote = eqMask(x, '"');
    r.open_brace = eqMask(x, '{');
    r.close_brace = eqMask(x, '}');
    r.open_bracket = eqMask(x, '[');
    r.close_bracket = eqMask(x, ']');
    r.colon = eqMask(x, ':');
    r.comma = eqMask(x, ',');
    r.whitespace = eqMask(x, ' ') | eqMask(x, '\t') | eqMask(x, '\n') |
                   eqMask(x, '\r');
    return r;
}

StringRaw
stringRaw(const char* data)
{
    Vecs x = load64(data);
    return {eqMask(x, '\\'), eqMask(x, '"')};
}

uint64_t
eqBits(const char* data, char c)
{
    return eqMask(load64(data), c);
}

uint64_t
whitespaceBits(const char* data)
{
    // bytes <= 0x20  <=>  max(byte, 0x20) == 0x20 (unsigned)
    Vecs x = load64(data);
    __m256i limit = _mm256_set1_epi8(0x20);
    uint32_t m_lo = static_cast<uint32_t>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(_mm256_max_epu8(x.lo, limit), limit)));
    uint32_t m_hi = static_cast<uint32_t>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(_mm256_max_epu8(x.hi, limit), limit)));
    return (static_cast<uint64_t>(m_hi) << 32) | m_lo;
}

bool
asciiBlock(const char* p)
{
    Vecs x = load64(p);
    return (_mm256_movemask_epi8(x.lo) | _mm256_movemask_epi8(x.hi)) ==
           0;
}

uint64_t
clmulPrefixXor(uint64_t x)
{
    __m128i v = _mm_set_epi64x(0, static_cast<int64_t>(x));
    __m128i ones = _mm_set1_epi8(static_cast<char>(0xFF));
    __m128i r = _mm_clmulepi64_si128(v, ones, 0);
    return static_cast<uint64_t>(_mm_cvtsi128_si64(r));
}

int
pdepSelectBit(uint64_t x, int k)
{
    return bits::trailingZeros(_pdep_u64(uint64_t{1} << (k - 1), x));
}

bool
supported()
{
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("bmi2") &&
           __builtin_cpu_supports("pclmul");
}

} // namespace

const Kernel kAvx2Kernel = {
    "avx2",
    /*priority=*/2,
    supported,
    rawBits,
    stringRaw,
    eqBits,
    whitespaceBits,
    asciiBlock,
    clmulPrefixXor,
    pdepSelectBit,
};

} // namespace jsonski::kernels

#endif // JSONSKI_KERNELS_X86
