/**
 * @file
 * Deterministic structured mutator for the differential fuzz harness.
 *
 * Random byte noise almost never exercises the interesting failure
 * modes of a bit-parallel skipper: the hazards live where *structure*
 * is damaged (a brace flipped, a quote dropped, the input cut mid
 * container) and where that damage lands relative to a 64-byte block
 * boundary.  The mutator therefore applies a small set of structure-
 * aware edits, several of which deliberately target bytes at block
 * offsets 62..65 so that carry and tail-padding logic is hit every
 * run.  Everything is driven by the repo's seedable Rng, so a failing
 * mutant is reproducible from (seed, iteration) alone.
 */
#ifndef JSONSKI_TESTING_MUTATOR_H
#define JSONSKI_TESTING_MUTATOR_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace jsonski::testing {

/** One applied edit, for failure diagnostics. */
struct Mutation
{
    enum class Kind {
        Truncate,      ///< cut the document at a random byte
        FlipContainer, ///< replace a byte with one of {}[]
        DropQuote,     ///< delete one '"' byte
        SpliceByte,    ///< insert/overwrite one structural-ish byte
        BlockBoundary, ///< targeted edit at a block offset 62..65
    };

    Kind kind;
    size_t position; ///< byte offset the edit applied at
    char byte;       ///< inserted/overwriting byte ('\0' for deletions)
};

/** Human-readable one-liner ("flip-container @117 -> '}'"). */
std::string describe(const Mutation& m);

/**
 * Deterministic JSONPath grammar mutator, the query-side counterpart
 * of StructuredMutator: wellFormed() assembles a random step vector
 * (keys, indexes, slices, wildcards, descendants at any position, and
 * filter predicates over every operator/literal combination) and
 * prints it through PathQuery::toString(), so the text is parseable
 * by construction — occasionally with legal predicate whitespace
 * injected to exercise non-canonical spellings.  nearMiss() damages a
 * well-formed query with one edit (truncate, delete, duplicate, or
 * splice a grammar metacharacter); the parser must either accept the
 * result or throw PathError with an in-range position — never crash,
 * loop, or throw anything else.
 */
class QueryMutator
{
  public:
    explicit QueryMutator(uint64_t seed) : rng_(seed) {}

    /** A random query text guaranteed to parse. */
    std::string wellFormed();

    /**
     * A random query *set* of 2..5 texts for the batched-vs-sequential
     * leg: deliberately salted with exact duplicates (the batched
     * engine must collapse them) and overlapping-prefix extensions of
     * earlier entries (so the shared trie gets real multi-query
     * nodes).  Every entry parses.
     */
    std::vector<std::string> querySet();

    /** A damaged query text; usually (not always) rejected. */
    std::string nearMiss();

    /** The generator driving the choices. */
    Rng& rng() { return rng_; }

  private:
    Rng rng_;
};

/** See file comment. */
class StructuredMutator
{
  public:
    explicit StructuredMutator(uint64_t seed) : rng_(seed) {}

    /**
     * Produce one mutant of @p doc by applying 1..3 random edits.
     * @param applied When non-null, receives the edit list.
     */
    std::string mutate(std::string_view doc,
                       std::vector<Mutation>* applied = nullptr);

    /** The generator driving the mutation choices. */
    Rng& rng() { return rng_; }

  private:
    void applyOne(std::string& doc, std::vector<Mutation>& applied);

    Rng rng_;
};

} // namespace jsonski::testing

#endif // JSONSKI_TESTING_MUTATOR_H
