#include "testing/differential.h"

#include <cassert>
#include <cstdlib>
#include <exception>

#include "baseline/dom/query.h"
#include "gen/datasets.h"
#include "index/structural_index.h"
#include "json/text.h"
#include "json/validate.h"
#include "kernels/kernel.h"
#include "path/matches.h"
#include "path/parser.h"
#include "path/queryset.h"
#include "ski/multi.h"
#include "ski/record_scanner.h"
#include "ski/streamer.h"
#include "testing/mutator.h"
#include "testing/seam.h"
#include "util/error.h"
#include "util/rng.h"

namespace jsonski::testing {
namespace {

/** What one engine did with one (mutant, query) pair. */
struct EngineRun
{
    bool threw_parse_error = false;
    bool threw_other = false;
    ErrorCode error_code = ErrorCode::Unspecified;
    size_t error_position = 0;
    std::string error_what;
    std::vector<std::string> values;
};

EngineRun
runStreamer(const std::string& json, const path::PathQuery& q)
{
    EngineRun r;
    try {
        path::CollectSink sink;
        ski::Streamer(q).run(json, &sink);
        r.values = std::move(sink.values);
    } catch (const ParseError& e) {
        r.threw_parse_error = true;
        r.error_code = e.code();
        r.error_position = e.position();
        r.error_what = e.what();
    } catch (const std::exception& e) {
        r.threw_other = true;
        r.error_what = e.what();
    }
    return r;
}

EngineRun
runStreamerIndexed(const std::string& json, const path::PathQuery& q,
                   const index::StructuralIndex& ix)
{
    EngineRun r;
    try {
        path::CollectSink sink;
        ski::Streamer(q).runIndexed(json, ix, &sink);
        r.values = std::move(sink.values);
    } catch (const ParseError& e) {
        r.threw_parse_error = true;
        r.error_code = e.code();
        r.error_position = e.position();
        r.error_what = e.what();
    } catch (const std::exception& e) {
        r.threw_other = true;
        r.error_what = e.what();
    }
    return r;
}

/**
 * Seam offsets worth forcing for this document: one byte past the
 * first backslash (backslash = last byte of a chunk), between the
 * first two adjacent digits (mid-number), one byte past the first
 * UTF-8 lead byte (between lead and continuation), and three bytes
 * into the first \uXXXX escape (mid-hex) — the carry bugs Lemire's
 * classifier work singles out.
 */
std::vector<size_t>
seamOffsets(const std::string& doc)
{
    std::vector<size_t> seams;
    auto push = [&](size_t s) {
        if (s > 0 && s < doc.size())
            seams.push_back(s);
    };
    for (size_t i = 0; i < doc.size(); ++i) {
        if (doc[i] == '\\') {
            push(i + 1);
            break;
        }
    }
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
        if (doc[i] >= '0' && doc[i] <= '9' && doc[i + 1] >= '0' &&
            doc[i + 1] <= '9') {
            push(i + 1);
            break;
        }
    }
    for (size_t i = 0; i < doc.size(); ++i) {
        if ((static_cast<unsigned char>(doc[i]) & 0xC0) == 0xC0) {
            push(i + 1);
            break;
        }
    }
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
        if (doc[i] == '\\' && doc[i + 1] == 'u') {
            push(i + 3);
            break;
        }
    }
    // Predicate-relevant seams: right after the first attribute ':'
    // (the filter probe reads the value across a refill) and two bytes
    // into the first string attribute value (mid-token inside the
    // slice a comparison will decode).
    for (size_t i = 0; i + 1 < doc.size(); ++i) {
        if (doc[i] == ':') {
            push(i + 1);
            size_t j = i + 1;
            while (j < doc.size() && json::isWhitespace(doc[j]))
                ++j;
            if (j < doc.size() && doc[j] == '"')
                push(j + 2);
            break;
        }
    }
    return seams;
}

/**
 * Kernels every mutant is replayed under: JSONSKI_TEST_KERNELS=a,b
 * when set (strictly validated — a typo must not silently shrink
 * coverage), otherwise every runnable kernel other than the active
 * one.  Single-kernel hosts replay nothing.
 */
std::vector<const kernels::Kernel*>
replayKernels()
{
    std::vector<const kernels::Kernel*> out;
    const char* env = std::getenv("JSONSKI_TEST_KERNELS");
    if (env != nullptr && *env != '\0') {
        std::string_view list(env);
        while (!list.empty()) {
            size_t comma = list.find(',');
            out.push_back(&kernels::select(list.substr(0, comma)));
            list = comma == std::string_view::npos
                       ? std::string_view{}
                       : list.substr(comma + 1);
        }
        return out;
    }
    const kernels::Kernel& active = kernels::active();
    for (const kernels::Kernel* k : kernels::runnable()) {
        if (k != &active)
            out.push_back(k);
    }
    return out;
}

/** Clip a mutant for inclusion in a failure message. */
std::string
excerpt(const std::string& doc)
{
    constexpr size_t kMax = 160;
    if (doc.size() <= kMax)
        return doc;
    return doc.substr(0, kMax) + "...<" + std::to_string(doc.size()) +
           " bytes>";
}

std::string
describeEdits(const std::vector<Mutation>& edits)
{
    std::string out;
    for (const Mutation& m : edits) {
        if (!out.empty())
            out += ", ";
        out += describe(m);
    }
    return out;
}

} // namespace

FuzzReport
runDifferentialFuzz(const FuzzConfig& config)
{
    assert(!config.corpus.empty());
    for (const std::string& doc : config.corpus) {
        (void)doc;
        assert(json::validate(doc) && "corpus documents must be valid");
    }

    std::vector<path::PathQuery> queries;
    queries.reserve(config.queries.size());
    for (const std::string& text : config.queries)
        queries.push_back(path::parse(text));

    StructuredMutator mutator(config.seed);
    // Decorrelated stream: the grammar mutator must not perturb the
    // document-mutation sequence, so (seed, iteration) still replays
    // the same mutant with or without the grammar leg.
    QueryMutator query_mutator(config.seed ^ 0x9e3779b97f4a7c15ull);
    // Same decorrelation for the corrupted-sidecar byte picks.
    Rng sidecar_rng(config.seed ^ 0xc2b2ae3d27d4eb4full);
    FuzzReport report;
    std::vector<Mutation> edits;
    const std::vector<const kernels::Kernel*> replay_kernels =
        replayKernels();

    auto recordFailure = [&](const std::string& what) {
        if (report.failures.size() < config.max_failures)
            report.failures.push_back(what);
    };

    for (size_t iter = 0; iter < config.mutants; ++iter) {
        if (report.failures.size() >= config.max_failures)
            break;
        const std::string& seed_doc =
            config.corpus[mutator.rng().below(config.corpus.size())];
        std::string mutant = mutator.mutate(seed_doc, &edits);
        ++report.executed;
        bool valid = static_cast<bool>(json::validate(mutant));
        (valid ? report.valid_mutants : report.invalid_mutants)++;

        std::string context = "iter " + std::to_string(iter) + " [" +
                              describeEdits(edits) +
                              "] json: " + excerpt(mutant);

        // Evaluate a rotating window of queries so runtime stays
        // proportional to the mutant count, not mutants x queries.
        size_t nq = queries.size() < 4 ? queries.size() : 4;
        EngineRun first_run;
        bool first_usable = false;
        for (size_t k = 0; k < nq; ++k) {
            size_t qi = (iter + k) % queries.size();
            EngineRun ski = runStreamer(mutant, queries[qi]);
            if (k == 0) {
                first_run = ski;
                first_usable = !ski.threw_other;
            }
            if (ski.threw_other) {
                ++report.escapes;
                recordFailure("non-ParseError escape: " + ski.error_what +
                              " query=" + config.queries[qi] + " " +
                              context);
                continue;
            }
            if (ski.threw_parse_error &&
                ski.error_position > mutant.size()) {
                ++report.escapes;
                recordFailure("ParseError position past the input: " +
                              ski.error_what +
                              " query=" + config.queries[qi] + " " +
                              context);
                continue;
            }
            if (valid) {
                if (ski.threw_parse_error) {
                    ++report.divergences;
                    recordFailure("throw on valid mutant: " +
                                  ski.error_what +
                                  " query=" + config.queries[qi] + " " +
                                  context);
                    continue;
                }
                path::CollectSink dom_sink;
                try {
                    dom::parseAndQuery(mutant, queries[qi], &dom_sink);
                } catch (const std::exception& e) {
                    ++report.escapes;
                    recordFailure(std::string("oracle threw on input the "
                                              "validator accepted: ") +
                                  e.what() + " " + context);
                    continue;
                }
                if (ski.values != dom_sink.values) {
                    ++report.divergences;
                    recordFailure(
                        "oracle divergence (ski " +
                        std::to_string(ski.values.size()) + " vs dom " +
                        std::to_string(dom_sink.values.size()) +
                        " values) query=" + config.queries[qi] + " " +
                        context);
                }
            } else if (ski.threw_parse_error) {
                ++report.parse_errors;
            }
        }

        // Grammar leg: one freshly generated well-formed query per
        // mutant, judged by the same rules as the fixed list, plus one
        // near-miss that the parser must reject cleanly (or accept —
        // some single-byte damage stays grammatical).
        {
            std::string qtext = query_mutator.wellFormed();
            bool parsed = false;
            path::PathQuery gq;
            try {
                gq = path::parse(qtext);
                parsed = true;
            } catch (const std::exception& e) {
                ++report.escapes;
                recordFailure(
                    std::string("generated query failed to parse: ") +
                    e.what() + " query=" + qtext);
            }
            if (parsed) {
                ++report.grammar_runs;
                EngineRun ski = runStreamer(mutant, gq);
                if (ski.threw_other) {
                    ++report.escapes;
                    recordFailure("grammar-query escape: " +
                                  ski.error_what + " query=" + qtext +
                                  " " + context);
                } else if (ski.threw_parse_error &&
                           ski.error_position > mutant.size()) {
                    ++report.escapes;
                    recordFailure(
                        "grammar-query position past the input: " +
                        ski.error_what + " query=" + qtext + " " +
                        context);
                } else if (valid) {
                    if (ski.threw_parse_error) {
                        ++report.divergences;
                        recordFailure("grammar-query throw on valid "
                                      "mutant: " +
                                      ski.error_what + " query=" + qtext +
                                      " " + context);
                    } else {
                        path::CollectSink dom_sink;
                        try {
                            dom::parseAndQuery(mutant, gq, &dom_sink);
                            if (ski.values != dom_sink.values) {
                                ++report.divergences;
                                recordFailure(
                                    "grammar-query oracle divergence "
                                    "(ski " +
                                    std::to_string(ski.values.size()) +
                                    " vs dom " +
                                    std::to_string(
                                        dom_sink.values.size()) +
                                    " values) query=" + qtext + " " +
                                    context);
                            }
                        } catch (const std::exception& e) {
                            ++report.escapes;
                            recordFailure(
                                std::string("grammar-query oracle "
                                            "threw: ") +
                                e.what() + " query=" + qtext + " " +
                                context);
                        }
                    }
                }
            }

            std::string miss = query_mutator.nearMiss();
            try {
                (void)path::parse(miss);
            } catch (const PathError& e) {
                ++report.grammar_rejects;
                if (e.position() != PathError::kNoPosition &&
                    e.position() > miss.size()) {
                    ++report.escapes;
                    recordFailure(
                        "near-miss rejection position past the text: " +
                        std::string(e.what()) + " query=" + miss);
                }
            } catch (const std::exception& e) {
                ++report.escapes;
                recordFailure(std::string("near-miss parser escape: ") +
                              e.what() + " query=" + miss);
            }
        }

        // Query-set leg: one combined multi-query pass over a random
        // batch (duplicates and overlapping prefixes included),
        // differenced against sequential solo runs.  Values must agree
        // per distinct query on valid mutants; invalid mutants only
        // need the result-or-in-range-ParseError contract on both
        // sides (see the file comment in differential.h).
        {
            std::vector<std::string> set_texts =
                query_mutator.querySet();
            std::string set_ctx = " set=";
            for (size_t i = 0; i < set_texts.size(); ++i)
                set_ctx += (i != 0 ? "," : "") + set_texts[i];
            set_ctx += " " + context;
            try {
                path::QuerySet qset =
                    path::QuerySet::fromTexts(set_texts);
                ski::MultiStreamer ms(qset);
                ski::MultiCollectSink msink(ms.queryCount());
                ++report.set_runs;
                bool m_threw = false;
                ErrorCode m_code = ErrorCode::Unspecified;
                size_t m_pos = 0;
                std::string m_what;
                try {
                    ms.run(mutant, &msink);
                } catch (const ParseError& e) {
                    m_threw = true;
                    m_code = e.code();
                    m_pos = e.position();
                    m_what = e.what();
                }
                (void)m_code;
                if (m_threw && m_pos > mutant.size()) {
                    ++report.escapes;
                    recordFailure(
                        "batched position past the input: " + m_what +
                        set_ctx);
                } else if (valid && m_threw) {
                    ++report.divergences;
                    recordFailure("batched throw on valid mutant: " +
                                  m_what + set_ctx);
                } else if (valid) {
                    for (size_t qi = 0; qi < ms.queryCount(); ++qi) {
                        EngineRun solo =
                            runStreamer(mutant, ms.queries()[qi]);
                        if (solo.threw_other || solo.threw_parse_error)
                            continue; // the fixed-query leg's territory
                        if (msink.values[qi] != solo.values) {
                            ++report.divergences;
                            recordFailure(
                                "batched value divergence (batched " +
                                std::to_string(msink.values[qi].size()) +
                                " vs solo " +
                                std::to_string(solo.values.size()) +
                                " values) query=" +
                                ms.querySet().canonical[qi] + set_ctx);
                        }
                    }
                }
            } catch (const PathError&) {
                // querySet() entries parse by construction.
                ++report.escapes;
                recordFailure("generated query set failed to compile" +
                              set_ctx);
            } catch (const std::exception& e) {
                ++report.escapes;
                recordFailure(std::string("query-set escape: ") +
                              e.what() + set_ctx);
            }

            // Atomic-rejection probe: salt the set with a near-miss;
            // the whole set must parse or be rejected with PathError —
            // a partial compile or a foreign exception is an escape.
            std::vector<std::string> salted = set_texts;
            salted.insert(salted.begin() + static_cast<long>(
                              query_mutator.rng().below(salted.size() + 1)),
                          query_mutator.nearMiss());
            try {
                (void)path::QuerySet::fromTexts(salted);
            } catch (const PathError&) {
                ++report.set_rejects;
            } catch (const std::exception& e) {
                ++report.escapes;
                recordFailure(
                    std::string("salted query-set escape: ") + e.what() +
                    set_ctx);
            }
        }

        // Seam-hunting replay: rerun the first query chunked, with a
        // seam forced at each token-sensitive offset.  The whole-buffer
        // run of the same mutant is the oracle — observable behaviour
        // must not depend on where the input was cut.
        if (first_usable) {
            size_t qi0 = iter % queries.size();
            for (size_t seam : seamOffsets(mutant)) {
                SeamRun chunked = runStreamerChunked(
                    mutant, queries[qi0], {seam, mutant.size() + 1},
                    /*chunk_bytes=*/64);
                ++report.seam_replays;
                std::string seam_ctx = " seam=" + std::to_string(seam) +
                                       " query=" + config.queries[qi0] +
                                       " " + context;
                if (chunked.threw_other) {
                    ++report.escapes;
                    recordFailure("chunked replay escape: " +
                                  chunked.error_what + seam_ctx);
                } else if (chunked.threw_parse_error !=
                           first_run.threw_parse_error) {
                    ++report.divergences;
                    recordFailure(
                        std::string("seam error divergence: whole ") +
                        (first_run.threw_parse_error ? "threw"
                                                     : "succeeded") +
                        ", chunked " +
                        (chunked.threw_parse_error ? "threw ("
                             + chunked.error_what + ")" : "succeeded") +
                        seam_ctx);
                } else if (chunked.threw_parse_error &&
                           chunked.error_position !=
                               first_run.error_position) {
                    ++report.divergences;
                    recordFailure("seam error position divergence: whole " +
                                  std::to_string(first_run.error_position) +
                                  " vs chunked " +
                                  std::to_string(chunked.error_position) +
                                  seam_ctx);
                } else if (!chunked.threw_parse_error &&
                           chunked.values != first_run.values) {
                    ++report.divergences;
                    recordFailure("seam value divergence" + seam_ctx);
                }
            }
        }

        // Cross-ISA replay: rerun the first query whole-buffer under
        // every other runnable SIMD kernel.  The run under the active
        // kernel is the oracle — values, ErrorCode, error position,
        // and the fast-forward skip accounting must not depend on
        // which ISA the dispatcher picked.
        if (first_usable && !replay_kernels.empty()) {
            size_t qi0 = iter % queries.size();
            SeamRun oracle = runStreamerWhole(mutant, queries[qi0]);
            for (const kernels::Kernel* kern : replay_kernels) {
                SeamRun alt;
                {
                    kernels::Override guard(*kern);
                    alt = runStreamerWhole(mutant, queries[qi0]);
                }
                ++report.kernel_replays;
                std::string kctx = std::string(" kernel=") + kern->name +
                                   " query=" + config.queries[qi0] +
                                   " " + context;
                if (alt.threw_other) {
                    ++report.escapes;
                    recordFailure("kernel replay escape: " +
                                  alt.error_what + kctx);
                } else if (alt.threw_parse_error !=
                           oracle.threw_parse_error) {
                    ++report.divergences;
                    recordFailure(
                        std::string("kernel error divergence: oracle ") +
                        (oracle.threw_parse_error ? "threw ("
                             + oracle.error_what + ")" : "succeeded") +
                        ", replay " +
                        (alt.threw_parse_error ? "threw ("
                             + alt.error_what + ")" : "succeeded") +
                        kctx);
                } else if (alt.threw_parse_error &&
                           (alt.error_position != oracle.error_position ||
                            alt.error_code != oracle.error_code)) {
                    ++report.divergences;
                    recordFailure(
                        "kernel error detail divergence: oracle " +
                        std::string(errorCodeName(oracle.error_code)) +
                        "@" + std::to_string(oracle.error_position) +
                        " vs replay " +
                        std::string(errorCodeName(alt.error_code)) + "@" +
                        std::to_string(alt.error_position) + kctx);
                } else if (!alt.threw_parse_error &&
                           alt.values != oracle.values) {
                    ++report.divergences;
                    recordFailure("kernel value divergence (oracle " +
                                  std::to_string(oracle.values.size()) +
                                  " vs replay " +
                                  std::to_string(alt.values.size()) +
                                  " values)" + kctx);
                } else if (!alt.threw_parse_error &&
                           alt.stats.skipped != oracle.stats.skipped) {
                    ++report.divergences;
                    recordFailure("kernel fast-forward stats divergence "
                                  "(oracle total " +
                                  std::to_string(oracle.stats.total()) +
                                  " vs replay " +
                                  std::to_string(alt.stats.total()) +
                                  ")" + kctx);
                }
            }
        }

        // Warm-path replay: build a semi-index from the mutant's bytes
        // and rerun the first query through Streamer::runIndexed.  The
        // plain streaming run is the oracle — skipping via the index's
        // bitmaps (or the unusable-index fallback) must not change
        // values, ErrorCode, or error position.
        if (first_usable) {
            size_t qi0 = iter % queries.size();
            index::StructuralIndex ix =
                index::StructuralIndex::build(mutant);
            EngineRun warm = runStreamerIndexed(mutant, queries[qi0], ix);
            ++report.index_replays;
            std::string ictx = std::string(" usable=") +
                               (ix.usable() ? "1" : "0") +
                               " query=" + config.queries[qi0] + " " +
                               context;
            if (warm.threw_other) {
                ++report.escapes;
                recordFailure("indexed replay escape: " + warm.error_what +
                              ictx);
            } else if (warm.threw_parse_error &&
                       warm.error_code == ErrorCode::IndexMismatch &&
                       !valid) {
                // Grammatically invalid document: the resident warm
                // path replays plain on a defensive mismatch, but the
                // chunked reroute (JSONSKI_TEST_CHUNK_BYTES) cannot —
                // its source is forward-only — so a typed fail-closed
                // refusal is within contract there.  Silently *wrong*
                // output would still land in the value-divergence
                // branch below.
            } else if (warm.threw_parse_error !=
                       first_run.threw_parse_error) {
                ++report.divergences;
                recordFailure(
                    std::string("indexed error divergence: streaming ") +
                    (first_run.threw_parse_error
                         ? "threw (" + first_run.error_what + ")"
                         : "succeeded") +
                    ", indexed " +
                    (warm.threw_parse_error
                         ? "threw (" + warm.error_what + ")"
                         : "succeeded") +
                    ictx);
            } else if (warm.threw_parse_error &&
                       (warm.error_position != first_run.error_position ||
                        warm.error_code != first_run.error_code)) {
                ++report.divergences;
                recordFailure(
                    "indexed error detail divergence: streaming " +
                    std::string(errorCodeName(first_run.error_code)) +
                    "@" + std::to_string(first_run.error_position) +
                    " vs indexed " +
                    std::string(errorCodeName(warm.error_code)) + "@" +
                    std::to_string(warm.error_position) + ictx);
            } else if (!warm.threw_parse_error &&
                       warm.values != first_run.values) {
                ++report.divergences;
                recordFailure("indexed value divergence (streaming " +
                              std::to_string(first_run.values.size()) +
                              " vs indexed " +
                              std::to_string(warm.values.size()) +
                              " values)" + ictx);
            }

            // Corrupted-sidecar probe: flip one random byte of the
            // serialized index — deserialize() must reject it with
            // IndexError carrying an offset inside the bytes.  The
            // checksum makes every single-byte flip detectable.
            std::string sidecar = ix.serialize();
            size_t at = sidecar_rng.below(sidecar.size());
            sidecar[at] = static_cast<char>(
                sidecar[at] ^
                static_cast<char>(1 + sidecar_rng.below(255)));
            ++report.index_mutations;
            try {
                (void)index::StructuralIndex::deserialize(sidecar);
                ++report.escapes;
                recordFailure("corrupted sidecar accepted: byte " +
                              std::to_string(at) + ictx);
            } catch (const index::IndexError& e) {
                if (e.offset() > sidecar.size()) {
                    ++report.escapes;
                    recordFailure(
                        "sidecar rejection offset past the bytes: " +
                        std::string(e.what()) + ictx);
                }
            } catch (const std::exception& e) {
                ++report.escapes;
                recordFailure(std::string("sidecar rejection escape: ") +
                              e.what() + ictx);
            }
        }

        // The record scanner sees the same mutants: it must also obey
        // the result-or-ParseError contract.
        try {
            (void)ski::scanRecords(mutant);
        } catch (const ParseError& e) {
            if (e.position() > mutant.size()) {
                ++report.escapes;
                recordFailure(std::string("scanRecords position past the "
                                          "input: ") +
                              e.what() + " " + context);
            }
        } catch (const std::exception& e) {
            ++report.escapes;
            recordFailure(std::string("scanRecords escape: ") + e.what() +
                          " " + context);
        }
    }
    return report;
}

std::vector<std::string>
defaultCorpus(size_t per_dataset_bytes)
{
    std::vector<std::string> corpus;
    for (gen::DatasetId id : gen::kAllDatasets) {
        // A whole small-format record set, record by record, plus the
        // single-large-record form of the same dataset.
        gen::SmallRecords small =
            gen::generateSmall(id, per_dataset_bytes);
        size_t take = small.count() < 4 ? small.count() : 4;
        for (size_t i = 0; i < take; ++i)
            corpus.emplace_back(small.record(i));
        corpus.push_back(gen::generateLarge(id, per_dataset_bytes));
    }
    // Handcrafted adversaries: escape runs ending on a block boundary,
    // metacharacters inside strings, and nesting deeper than a block.
    std::string run_doc = "{\"k\": \"";
    run_doc += std::string(64 - run_doc.size() - 3, 'x');
    run_doc += "\\\\\\\"q\", \"m\": [1, 2]}";
    corpus.push_back(run_doc);
    corpus.push_back(
        R"({"a":"}}}{{{","b":["s,]}",{"c":"x\"y\\"},null],"d":{"e":[]}})");
    std::string deep;
    for (int i = 0; i < 40; ++i)
        deep += "[";
    deep += "{\"id\": 7}";
    for (int i = 0; i < 40; ++i)
        deep += "]";
    corpus.push_back(deep);
    return corpus;
}

std::vector<std::string>
defaultQueries()
{
    // The Table 5 small-record query shapes, plus wildcard, slice,
    // index, descendant, filter, and interior-descendant coverage
    // (the filter/descendant shapes target generator dataset fields so
    // they select real values, not just empty result sets).
    return {
        "$.nm",
        "$.en.urls[*].url",
        "$.cp[1:3].id",
        "$.rt[*].lg[*].st[*].dt.tx",
        "$.cl.P150[*].ms.pty",
        "$.bmrpr.pr",
        "$[*][2:4]",
        "$[0]",
        "$..id",
        "$[?(@.id)]",
        "$.cp[?(@.id>1)].id",
        "$..urls[?(@.url!='x')].url",
        "$..cp[0].id",
        "$..en..url",
    };
}

} // namespace jsonski::testing
