/**
 * @file
 * Differential fuzz harness: JSONSki streamer vs. the DOM baseline as
 * oracle, over structured mutants of known-good corpora.
 *
 * The verdict rules follow the error handling contract (DESIGN.md §7):
 *  - a mutant that still validates must stream without throwing and
 *    must produce exactly the DOM engine's match values;
 *  - an invalid mutant may either stream to a (possibly empty) result
 *    — the paper's §3.3 license to skip damage in fast-forwarded
 *    regions — or throw jsonski::ParseError with a position inside the
 *    input; any other escape (foreign exception, crash, position past
 *    the end) is a harness failure.
 *
 * Everything is deterministic under (seed, config), so the ctest smoke
 * run and a long local soak explore exactly reproducible mutant
 * streams.
 *
 * Seam-hunting mode: every mutant is additionally replayed through the
 * adversarial chunk splitter with a seam forced at token-sensitive
 * offsets (right after a backslash, between two digits, after a UTF-8
 * lead byte, inside a \uXXXX escape).  The oracle for these replays is
 * the whole-buffer run of the *same* mutant — which is exactly the
 * contract, and works for invalid mutants too: error class and
 * position must not depend on where the chunks were cut.
 *
 * Kernel-replay mode: every mutant is also replayed under each other
 * runnable SIMD kernel (src/kernels/) with the whole-buffer run under
 * the active kernel as oracle — values, ErrorCode, error position, and
 * FastForwardStats must all be independent of the dispatched ISA.
 * JSONSKI_TEST_KERNELS=a,b in the environment restricts the replay set
 * (same spirit as JSONSKI_TEST_CHUNK_BYTES); each name must pass
 * kernels::select(), so a typo or an unsupported kernel fails fast
 * with ConfigError instead of silently shrinking coverage.
 *
 * Index-replay mode: every mutant additionally gets a structural
 * semi-index built from its bytes and the first query rerun through
 * Streamer::runIndexed, with the plain streaming run as oracle —
 * values, ErrorCode, and error position must be identical whether the
 * skips were answered from the index's bitmaps (usable mutant) or the
 * unusable-index fallback streamed.  Alongside, one corrupted-sidecar
 * probe per mutant flips a random byte of the serialized index and
 * requires deserialize() to reject it with IndexError (offset inside
 * the bytes); accepting damaged bytes, or any other exception, is an
 * escape.
 *
 * Grammar-fuzz mode: alongside the fixed query list, every mutant is
 * evaluated under one freshly generated query from QueryMutator.
 * A wellFormed() query is parseable by construction — a parse failure
 * is itself a harness failure — and on a valid mutant its results are
 * checked against the DOM oracle like any fixed query (filters and
 * interior descendants included).  A nearMiss() query must either
 * parse or be rejected with PathError carrying a position inside the
 * text; any other exception, or an out-of-range position, is an
 * escape.
 *
 * Query-set mode: every mutant is additionally run through the
 * combined multi-query engine on a QueryMutator::querySet() batch
 * (salted with exact duplicates and overlapping prefixes) and
 * differenced against sequential single-query runs.  On a valid
 * mutant the batched pass must succeed and every distinct query's
 * values must equal its solo run's, byte for byte; on an invalid
 * mutant both sides keep the result-or-in-range-ParseError contract
 * (the §3.3 skip license means a solo pass may lawfully notice damage
 * the batched pass parses, and vice versa, so value agreement is only
 * required when the document is valid — the queryset differential
 * test pins exact error agreement on crafted malformed documents).
 * Alongside, one set salted with a nearMiss() query must either parse
 * entirely or be rejected atomically with PathError (set_rejects).
 */
#ifndef JSONSKI_TESTING_DIFFERENTIAL_H
#define JSONSKI_TESTING_DIFFERENTIAL_H

#include <cstdint>
#include <string>
#include <vector>

namespace jsonski::testing {

/** Configuration of one fuzz run. */
struct FuzzConfig
{
    uint64_t seed = 1;
    size_t mutants = 10000; ///< total mutants across the whole corpus

    /** Seed documents; every one must be valid JSON. */
    std::vector<std::string> corpus;

    /** JSONPath texts evaluated against every mutant. */
    std::vector<std::string> queries;

    /** Cap on failures recorded before the run stops early. */
    size_t max_failures = 8;
};

/** Outcome of one fuzz run. */
struct FuzzReport
{
    size_t executed = 0;       ///< mutants actually run
    size_t valid_mutants = 0;  ///< mutants that still validated
    size_t invalid_mutants = 0;
    size_t parse_errors = 0;   ///< ParseErrors thrown (invalid mutants)
    size_t divergences = 0;    ///< result mismatch or throw on valid input
    size_t escapes = 0;        ///< non-ParseError exception / bad position
    size_t seam_replays = 0;   ///< chunked replays with a forced seam
    size_t kernel_replays = 0; ///< whole-buffer replays under other kernels
    size_t grammar_runs = 0;    ///< generated well-formed queries evaluated
    size_t grammar_rejects = 0; ///< near-miss queries rejected by the parser
    size_t set_runs = 0;    ///< batched-vs-sequential query-set replays
    size_t set_rejects = 0; ///< near-miss-salted sets rejected atomically
    size_t index_replays = 0;   ///< warm (semi-indexed) replays vs streaming
    size_t index_mutations = 0; ///< corrupted sidecars rejected by deserialize

    /** Reproducible descriptions of every recorded failure. */
    std::vector<std::string> failures;

    bool ok() const { return divergences == 0 && escapes == 0; }
};

/**
 * Run the harness.  @p config.corpus must be non-empty and valid (the
 * harness asserts each seed document against the validator before
 * mutating it).
 */
FuzzReport runDifferentialFuzz(const FuzzConfig& config);

/**
 * Default corpus: records from every generator dataset (Table 4) in
 * both processing formats — a handful of small records plus a slice of
 * the single-large-record form per dataset — topped off with a few
 * handcrafted adversarial documents (escape runs at block boundaries,
 * strings full of metacharacters, deep nesting).
 *
 * @param per_dataset_bytes Approximate generated size per dataset.
 */
std::vector<std::string> defaultCorpus(size_t per_dataset_bytes = 4096);

/** Default query mix: the Table 5 shapes plus descendant/wildcard. */
std::vector<std::string> defaultQueries();

} // namespace jsonski::testing

#endif // JSONSKI_TESTING_DIFFERENTIAL_H
