#include "testing/seam.h"

#include <exception>

#include "intervals/chunk_source.h"
#include "path/matches.h"
#include "path/parser.h"
#include "ski/streamer.h"
#include "util/error.h"

namespace jsonski::testing {
namespace {

/** Clip a document for inclusion in a failure message. */
std::string
excerpt(std::string_view doc)
{
    constexpr size_t kMax = 120;
    if (doc.size() <= kMax)
        return std::string(doc);
    return std::string(doc.substr(0, kMax)) + "...<" +
           std::to_string(doc.size()) + " bytes>";
}

SeamRun
capture(const ski::Streamer& streamer, std::string_view json,
        intervals::ChunkSource* source, size_t chunk_bytes)
{
    SeamRun r;
    try {
        path::CollectSink sink;
        ski::StreamResult res = source != nullptr
                                    ? streamer.run(*source, &sink, chunk_bytes)
                                    : streamer.run(json, &sink);
        r.values = std::move(sink.values);
        r.stats = res.stats;
        r.ingest = res.ingest;
    } catch (const ParseError& e) {
        r.threw_parse_error = true;
        r.error_code = e.code();
        r.error_position = e.position();
        r.error_what = e.what();
    } catch (const std::exception& e) {
        r.threw_other = true;
        r.error_what = e.what();
    }
    return r;
}

} // namespace

SeamRun
runStreamerWhole(std::string_view json, const path::PathQuery& q)
{
    return capture(ski::Streamer(q), json, nullptr, 0);
}

SeamRun
runStreamerChunked(std::string_view json, const path::PathQuery& q,
                   const std::vector<size_t>& schedule, size_t chunk_bytes)
{
    std::vector<size_t> sched =
        schedule.empty() ? std::vector<size_t>{chunk_bytes} : schedule;
    intervals::SplitSource source(json, std::move(sched));
    return capture(ski::Streamer(q), json, &source, chunk_bytes);
}

SeamReport
runSeamDifferential(const std::vector<std::string>& corpus,
                    const std::vector<std::string>& queries,
                    const std::vector<size_t>& chunk_sizes,
                    size_t max_failures)
{
    std::vector<path::PathQuery> parsed;
    parsed.reserve(queries.size());
    for (const std::string& text : queries)
        parsed.push_back(path::parse(text));

    SeamReport report;
    auto fail = [&](const std::string& what) {
        if (report.failures.size() < max_failures)
            report.failures.push_back(what);
    };

    for (const std::string& doc : corpus) {
        for (size_t qi = 0; qi < parsed.size(); ++qi) {
            SeamRun whole = runStreamerWhole(doc, parsed[qi]);
            for (size_t chunk : chunk_sizes) {
                if (report.failures.size() >= max_failures)
                    return report;
                size_t effective = chunk == 0 ? doc.size() + 1 : chunk;
                SeamRun chunked =
                    runStreamerChunked(doc, parsed[qi], {}, effective);
                ++report.comparisons;

                std::string context =
                    " query=" + queries[qi] + " chunk=" +
                    std::to_string(chunk) + " json: " + excerpt(doc);
                if (chunked.threw_other) {
                    fail("chunked run escaped with non-ParseError: " +
                         chunked.error_what + context);
                    continue;
                }
                if (whole.threw_parse_error !=
                    chunked.threw_parse_error) {
                    fail(std::string("error divergence: whole ") +
                         (whole.threw_parse_error ? "threw (" +
                              whole.error_what + ")" : "succeeded") +
                         ", chunked " +
                         (chunked.threw_parse_error ? "threw (" +
                              chunked.error_what + ")" : "succeeded") +
                         context);
                    continue;
                }
                if (whole.threw_parse_error) {
                    if (whole.error_position != chunked.error_position)
                        fail("error position divergence: whole " +
                             std::to_string(whole.error_position) +
                             " vs chunked " +
                             std::to_string(chunked.error_position) +
                             context);
                    else if (whole.error_code != chunked.error_code)
                        fail("error code divergence: whole " +
                             std::string(errorCodeName(whole.error_code)) +
                             " vs chunked " +
                             std::string(errorCodeName(chunked.error_code)) +
                             context);
                    continue;
                }
                if (whole.values != chunked.values) {
                    fail("value divergence: whole " +
                         std::to_string(whole.values.size()) +
                         " vs chunked " +
                         std::to_string(chunked.values.size()) +
                         " values" + context);
                    continue;
                }
                if (whole.stats.skipped != chunked.stats.skipped) {
                    std::string detail;
                    for (size_t g = 0; g < ski::kGroupCount; ++g) {
                        detail += (g ? "," : " G1..G5 whole=");
                        detail +=
                            std::to_string(whole.stats.skipped[g]);
                    }
                    detail += " chunked=";
                    for (size_t g = 0; g < ski::kGroupCount; ++g) {
                        if (g)
                            detail += ",";
                        detail +=
                            std::to_string(chunked.stats.skipped[g]);
                    }
                    fail("fast-forward stats divergence:" + detail +
                         context);
                }
            }
        }
    }
    return report;
}

} // namespace jsonski::testing
