/**
 * @file
 * Chunk-seam differential rig: the chunked ingestion path must be
 * *observationally identical* to the whole-buffer path — same match
 * values byte for byte, same error class and position on malformed
 * input, and the same FastForwardStats totals (positions are absolute
 * in both modes, so even the skip accounting has no excuse to drift).
 *
 * The rig replays (document, query) pairs at a ladder of chunk sizes
 * through the adversarial SplitSource and compares every observable
 * against the whole-buffer reference.  tests/chunked_differential_test
 * runs it over the default fuzz corpus and query mix as a tier-1 test;
 * the seam-hunting fuzz mode (differential.h) reuses runStreamer-
 * Chunked per mutant with seams forced at token-sensitive offsets.
 */
#ifndef JSONSKI_TESTING_SEAM_H
#define JSONSKI_TESTING_SEAM_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "intervals/cursor.h"
#include "path/ast.h"
#include "ski/stats.h"
#include "util/error.h"

namespace jsonski::testing {

/** Everything observable from one streaming pass. */
struct SeamRun
{
    bool threw_parse_error = false;
    bool threw_other = false;
    ErrorCode error_code = ErrorCode::Unspecified;
    size_t error_position = 0;
    std::string error_what;
    std::vector<std::string> values;
    ski::FastForwardStats stats;
    intervals::StreamCursor::IngestStats ingest;
};

/** Whole-buffer reference pass. */
SeamRun runStreamerWhole(std::string_view json, const path::PathQuery& q);

/**
 * Chunked pass through a SplitSource.
 *
 * @param schedule    Chunk-size schedule handed to SplitSource (cycled;
 *                    empty means {chunk_bytes}).
 * @param chunk_bytes Cursor refill granularity.
 */
SeamRun runStreamerChunked(std::string_view json, const path::PathQuery& q,
                           const std::vector<size_t>& schedule,
                           size_t chunk_bytes);

/** Outcome of a rig sweep. */
struct SeamReport
{
    size_t comparisons = 0; ///< (doc, query, chunk size) triples compared
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Compare chunked vs whole-buffer over corpus x queries x chunk sizes.
 * A chunk size of 0 means "whole document in one chunk".
 *
 * @param max_failures Failure descriptions recorded before stopping.
 */
SeamReport runSeamDifferential(const std::vector<std::string>& corpus,
                               const std::vector<std::string>& queries,
                               const std::vector<size_t>& chunk_sizes,
                               size_t max_failures = 16);

} // namespace jsonski::testing

#endif // JSONSKI_TESTING_SEAM_H
