#include "testing/mutator.h"

#include "intervals/block.h"

namespace jsonski::testing {

std::string
describe(const Mutation& m)
{
    const char* name = "?";
    switch (m.kind) {
      case Mutation::Kind::Truncate: name = "truncate"; break;
      case Mutation::Kind::FlipContainer: name = "flip-container"; break;
      case Mutation::Kind::DropQuote: name = "drop-quote"; break;
      case Mutation::Kind::SpliceByte: name = "splice-byte"; break;
      case Mutation::Kind::BlockBoundary: name = "block-boundary"; break;
    }
    std::string out = name;
    out += " @" + std::to_string(m.position);
    if (m.byte != '\0') {
        out += " -> '";
        out += m.byte;
        out += '\'';
    }
    return out;
}

void
StructuredMutator::applyOne(std::string& doc, std::vector<Mutation>& applied)
{
    static constexpr char kContainers[] = "{}[]";
    static constexpr char kSplice[] = "{}[]\",:\\ x1-";
    switch (rng_.below(5)) {
      case 0: { // Truncate
        size_t cut = rng_.below(doc.size() + 1);
        doc.resize(cut);
        applied.push_back({Mutation::Kind::Truncate, cut, '\0'});
        break;
      }
      case 1: { // FlipContainer
        if (doc.empty())
            break;
        size_t p = rng_.below(doc.size());
        char b = kContainers[rng_.below(4)];
        doc[p] = b;
        applied.push_back({Mutation::Kind::FlipContainer, p, b});
        break;
      }
      case 2: { // DropQuote: delete a randomly chosen '"'
        size_t quotes = 0;
        for (char c : doc)
            quotes += c == '"';
        if (quotes == 0)
            break;
        size_t target = rng_.below(quotes);
        for (size_t i = 0; i < doc.size(); ++i) {
            if (doc[i] == '"' && target-- == 0) {
                doc.erase(i, 1);
                applied.push_back({Mutation::Kind::DropQuote, i, '\0'});
                break;
            }
        }
        break;
      }
      case 3: { // SpliceByte: insert or overwrite one byte
        char b = kSplice[rng_.below(sizeof(kSplice) - 1)];
        size_t p = rng_.below(doc.size() + 1);
        if (rng_.chance(0.5) || doc.empty())
            doc.insert(p, 1, b);
        else
            doc[p % doc.size()] = b;
        applied.push_back({Mutation::Kind::SpliceByte, p, b});
        break;
      }
      case 4: { // BlockBoundary: damage right at a 64-byte edge
        constexpr size_t kBlock = intervals::kBlockSize;
        if (doc.size() <= kBlock)
            break;
        size_t boundary = (1 + rng_.below(doc.size() / kBlock)) * kBlock;
        // Offsets 62..65 relative to the block start straddle the edge.
        size_t p = boundary - 2 + rng_.below(4);
        if (p >= doc.size())
            break;
        static constexpr char kEdge[] = "{}[]\"\\,";
        char b = kEdge[rng_.below(sizeof(kEdge) - 1)];
        doc[p] = b;
        applied.push_back({Mutation::Kind::BlockBoundary, p, b});
        break;
      }
    }
}

std::string
StructuredMutator::mutate(std::string_view doc,
                          std::vector<Mutation>* applied)
{
    std::string out(doc);
    std::vector<Mutation> edits;
    size_t n = 1 + rng_.below(3);
    for (size_t i = 0; i < n; ++i)
        applyOne(out, edits);
    if (applied)
        *applied = std::move(edits);
    return out;
}

} // namespace jsonski::testing
