#include "testing/mutator.h"

#include <iterator>

#include "intervals/block.h"
#include "path/ast.h"
#include "path/parser.h"

namespace jsonski::testing {

namespace {

/** Attribute-name pool; the last two require bracket quoting. */
constexpr const char* kQueryFields[] = {"id",  "nm",    "url",     "pr",
                                        "a",   "b",     "odd key", "a'b"};

path::FilterLiteral
randomLiteral(Rng& rng)
{
    using path::FilterLiteral;
    switch (rng.below(6)) {
      case 0: return FilterLiteral::makeNull();
      case 1: return FilterLiteral::makeBool(rng.below(2) != 0);
      case 2: // small integer, possibly negative
        return FilterLiteral::makeNumber(
            static_cast<double>(rng.below(201)) - 100.0);
      case 3: // non-integer
        return FilterLiteral::makeNumber(
            (static_cast<double>(rng.below(1601)) - 800.0) / 8.0);
      case 4:
        return FilterLiteral::makeString(
            kQueryFields[rng.below(std::size(kQueryFields))]);
      default: // escapes must survive the print/parse round trip
        return FilterLiteral::makeString("q\\u'\n\t");
    }
}

path::PathStep
randomStep(Rng& rng)
{
    using path::PathStep;
    const char* field = kQueryFields[rng.below(std::size(kQueryFields))];
    switch (rng.below(8)) {
      case 0:
      case 1: return PathStep::makeKey(field);
      case 2: return PathStep::makeIndex(rng.below(5));
      case 3: {
        size_t lo = rng.below(4);
        return PathStep::makeSlice(lo, lo + 1 + rng.below(3));
      }
      case 4: return PathStep::makeWildcard();
      case 5: return PathStep::makeDescendant(field);
      default: {
        auto op = static_cast<path::FilterOp>(rng.below(7));
        path::FilterLiteral lit = randomLiteral(rng);
        // Ordering ops only compare numbers and strings; keep the
        // generated queries meaningful (Exists ignores the literal).
        if (op != path::FilterOp::Exists &&
            lit.kind != path::FilterLiteral::Kind::Number &&
            lit.kind != path::FilterLiteral::Kind::String &&
            op != path::FilterOp::Eq && op != path::FilterOp::Ne) {
            op = path::FilterOp::Eq;
        }
        return PathStep::makeFilter(field, op, std::move(lit));
      }
    }
}

} // namespace

std::string
QueryMutator::wellFormed()
{
    path::PathQuery q;
    size_t n = 1 + rng_.below(4);
    for (size_t i = 0; i < n; ++i)
        q.steps.push_back(randomStep(rng_));
    std::string text = q.toString();
    // Occasionally spell predicates non-canonically: whitespace after
    // `[?(` and before `)]` is legal and must normalize away.
    if (rng_.below(3) == 0) {
        for (size_t p = 0; (p = text.find("[?(", p)) != std::string::npos;
             p += 4)
            text.insert(p + 3, 1, ' ');
        for (size_t p = 0; (p = text.find(")]", p)) != std::string::npos;
             p += 3)
            text.insert(p, 1, ' ');
    }
    return text;
}

std::vector<std::string>
QueryMutator::querySet()
{
    std::vector<std::string> set;
    size_t n = 2 + rng_.below(4);
    for (size_t i = 0; i < n; ++i) {
        size_t shape = rng_.below(6);
        if (!set.empty() && shape == 0) {
            // Exact duplicate: the batched engine must collapse it.
            set.push_back(set[rng_.below(set.size())]);
        } else if (!set.empty() && shape <= 2) {
            // Overlapping prefix: extend an earlier query by one step,
            // so the shared trie gets real multi-query nodes.
            path::PathQuery q =
                path::parse(set[rng_.below(set.size())]);
            q.steps.push_back(randomStep(rng_));
            set.push_back(q.toString());
        } else {
            set.push_back(wellFormed());
        }
    }
    return set;
}

std::string
QueryMutator::nearMiss()
{
    std::string text = wellFormed();
    switch (rng_.below(4)) {
      case 0: // truncate (never to empty: that is just "$" territory)
        text.resize(1 + rng_.below(text.size()));
        break;
      case 1: // delete one byte
        text.erase(rng_.below(text.size()), 1);
        break;
      case 2: { // duplicate one byte
        size_t p = rng_.below(text.size());
        text.insert(p, 1, text[p]);
        break;
      }
      default: { // splice a grammar metacharacter
        static constexpr char kMeta[] = "=!<>()[]'\".?@$*:,x ";
        size_t p = rng_.below(text.size() + 1);
        text.insert(p, 1, kMeta[rng_.below(sizeof(kMeta) - 1)]);
        break;
      }
    }
    return text;
}

std::string
describe(const Mutation& m)
{
    const char* name = "?";
    switch (m.kind) {
      case Mutation::Kind::Truncate: name = "truncate"; break;
      case Mutation::Kind::FlipContainer: name = "flip-container"; break;
      case Mutation::Kind::DropQuote: name = "drop-quote"; break;
      case Mutation::Kind::SpliceByte: name = "splice-byte"; break;
      case Mutation::Kind::BlockBoundary: name = "block-boundary"; break;
    }
    std::string out = name;
    out += " @" + std::to_string(m.position);
    if (m.byte != '\0') {
        out += " -> '";
        out += m.byte;
        out += '\'';
    }
    return out;
}

void
StructuredMutator::applyOne(std::string& doc, std::vector<Mutation>& applied)
{
    static constexpr char kContainers[] = "{}[]";
    static constexpr char kSplice[] = "{}[]\",:\\ x1-";
    switch (rng_.below(5)) {
      case 0: { // Truncate
        size_t cut = rng_.below(doc.size() + 1);
        doc.resize(cut);
        applied.push_back({Mutation::Kind::Truncate, cut, '\0'});
        break;
      }
      case 1: { // FlipContainer
        if (doc.empty())
            break;
        size_t p = rng_.below(doc.size());
        char b = kContainers[rng_.below(4)];
        doc[p] = b;
        applied.push_back({Mutation::Kind::FlipContainer, p, b});
        break;
      }
      case 2: { // DropQuote: delete a randomly chosen '"'
        size_t quotes = 0;
        for (char c : doc)
            quotes += c == '"';
        if (quotes == 0)
            break;
        size_t target = rng_.below(quotes);
        for (size_t i = 0; i < doc.size(); ++i) {
            if (doc[i] == '"' && target-- == 0) {
                doc.erase(i, 1);
                applied.push_back({Mutation::Kind::DropQuote, i, '\0'});
                break;
            }
        }
        break;
      }
      case 3: { // SpliceByte: insert or overwrite one byte
        char b = kSplice[rng_.below(sizeof(kSplice) - 1)];
        size_t p = rng_.below(doc.size() + 1);
        if (rng_.chance(0.5) || doc.empty())
            doc.insert(p, 1, b);
        else
            doc[p % doc.size()] = b;
        applied.push_back({Mutation::Kind::SpliceByte, p, b});
        break;
      }
      case 4: { // BlockBoundary: damage right at a 64-byte edge
        constexpr size_t kBlock = intervals::kBlockSize;
        if (doc.size() <= kBlock)
            break;
        size_t boundary = (1 + rng_.below(doc.size() / kBlock)) * kBlock;
        // Offsets 62..65 relative to the block start straddle the edge.
        size_t p = boundary - 2 + rng_.below(4);
        if (p >= doc.size())
            break;
        static constexpr char kEdge[] = "{}[]\"\\,";
        char b = kEdge[rng_.below(sizeof(kEdge) - 1)];
        doc[p] = b;
        applied.push_back({Mutation::Kind::BlockBoundary, p, b});
        break;
      }
    }
}

std::string
StructuredMutator::mutate(std::string_view doc,
                          std::vector<Mutation>* applied)
{
    std::string out(doc);
    std::vector<Mutation> edits;
    size_t n = 1 + rng_.below(3);
    for (size_t i = 0; i < n; ++i)
        applyOne(out, edits);
    if (applied)
        *applied = std::move(edits);
    return out;
}

} // namespace jsonski::testing
